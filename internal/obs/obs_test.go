package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "a counter")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	if got := b.Value(); got != 3 {
		t.Fatalf("counter identity broken: %d", got)
	}
	if g1, g2 := r.Gauge("g", ""), r.Gauge("g", ""); g1 != g2 {
		t.Fatal("same name returned distinct gauges")
	}
	if h1, h2 := r.Histogram("h", "", DurationBuckets), r.Histogram("h", "", DurationBuckets); h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
	if p1, p2 := r.Phase("p", ""), r.Phase("p", ""); p1 != p2 {
		t.Fatal("same name returned distinct phases")
	}
}

func TestLabel(t *testing.T) {
	got := Label("ebda_sim_diagnose_total", "outcome", "cycle")
	want := `ebda_sim_diagnose_total{outcome="cycle"}`
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 10, 11} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hv, ok := s.Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// 0.5 and 1 land in <=1; 5 and 10 in <=10; 11 in +Inf.
	want := []uint64{2, 2, 1}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hv.Counts[i], w, hv.Counts)
		}
	}
	if hv.Count != 5 || hv.Sum != 27.5 {
		t.Fatalf("count/sum = %d/%v, want 5/27.5", hv.Count, hv.Sum)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	r.Counter("aaa_total", "")
	r.Counter(Label("mmm_total", "k", "v"), "")
	s := r.Snapshot()
	var names []string
	for _, c := range s.Counters {
		names = append(names, c.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("snapshot counters not sorted: %v", names)
		}
	}
}

func TestPhaseTableAndSpans(t *testing.T) {
	r := NewRegistry()
	p := r.Phase("child", "root")
	for w := 0; w < 3; w++ {
		sp := p.StartWorker(w)
		sp.End()
	}
	s := r.Snapshot()
	pv, ok := s.Phase("child")
	if !ok {
		t.Fatal("phase missing from snapshot")
	}
	if pv.Parent != "root" || pv.Count != 3 {
		t.Fatalf("phase = %+v, want parent=root count=3", pv)
	}
	if pv.TotalSeconds < 0 || pv.MaxSeconds < 0 {
		t.Fatalf("negative durations: %+v", pv)
	}
	hv, ok := s.Histogram(Label(phaseHistName, "phase", "child"))
	if !ok {
		t.Fatal("phase duration histogram not registered")
	}
	if hv.Count != 3 {
		t.Fatalf("duration histogram count = %d, want 3", hv.Count)
	}
}

func TestZeroSpanEndIsNoop(t *testing.T) {
	var sp Span
	sp.End() // must not panic
}

func TestSubAndFilter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ebda_verify_cache_hits_total", "")
	other := r.Counter("ebda_cdg_verifies_total", "")
	p := r.Phase("cdg.verify", "")
	c.Add(2)
	other.Add(5)
	p.Start().End()
	before := r.Snapshot()
	c.Add(7)
	p.Start().End()
	delta := r.Snapshot().Sub(before)
	if got := delta.Counter("ebda_verify_cache_hits_total"); got != 7 {
		t.Fatalf("delta hits = %d, want 7", got)
	}
	if got := delta.Counter("ebda_cdg_verifies_total"); got != 0 {
		t.Fatalf("delta verifies = %d, want 0", got)
	}
	if pv, ok := delta.Phase("cdg.verify"); !ok || pv.Count != 1 {
		t.Fatalf("delta phase = %+v, want count 1", pv)
	}
	f := delta.Filter("ebda_verify_cache_")
	if len(f.Counters) != 1 || f.Counters[0].Name != "ebda_verify_cache_hits_total" {
		t.Fatalf("filter kept %+v", f.Counters)
	}
	if len(f.Phases) != 0 {
		t.Fatalf("filter kept phases %+v", f.Phases)
	}
}

func TestCanonicalDropsTimingKeepsStructure(t *testing.T) {
	run := func() Snapshot {
		r := NewRegistry()
		r.Counter("c_total", "").Add(4)
		p := r.Phase("ph", "")
		p.Start().End()
		p.Start().End()
		return r.Snapshot()
	}
	a, b := run().Canonical(), run().Canonical()
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("canonical snapshots differ:\n%s\n%s", bufA.String(), bufB.String())
	}
	if pv, ok := a.Phase("ph"); !ok || pv.Count != 2 || pv.TotalSeconds != 0 || pv.Workers != nil {
		t.Fatalf("canonical phase = %+v, want count 2, zero timings", pv)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(9)
	r.Gauge("g", "").Set(-3)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	r.Phase("p", "").Start().End()
	s := r.Snapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Counter("c_total") != 9 || len(got.Gauges) != 1 || got.Gauges[0].Value != -3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, ok := got.Histogram("h"); !ok {
		t.Fatal("round trip lost histogram")
	}
	if pv, ok := got.Phase("p"); !ok || pv.Count != 1 {
		t.Fatalf("round trip lost phase: %+v", pv)
	}
}

func TestParseSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ParseSnapshot([]byte("not json")); err == nil {
		t.Fatal("want error for malformed snapshot")
	}
}

func TestWriteTextRenders(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	r.Phase("p", "").Start().End()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counters:", "c_total", "phases:", "count 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ebda_verify_cache_hits_total", "cache hits").Add(12)
	r.Counter(Label("ebda_sim_diagnose_total", "outcome", "cycle"), "diagnose outcomes").Add(1)
	r.Gauge("ebda_verify_cache_entries", "live entries").Set(4)
	p := r.Phase("cdg.verify", "")
	p.Start().End()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP ebda_verify_cache_hits_total cache hits",
		"# TYPE ebda_verify_cache_hits_total counter",
		"ebda_verify_cache_hits_total 12",
		`ebda_sim_diagnose_total{outcome="cycle"} 1`,
		"# TYPE ebda_verify_cache_entries gauge",
		"ebda_verify_cache_entries 4",
		"# TYPE ebda_phase_duration_seconds histogram",
		`ebda_phase_duration_seconds_bucket{phase="cdg.verify",le="1e-06"}`,
		`ebda_phase_duration_seconds_bucket{phase="cdg.verify",le="+Inf"} 1`,
		`ebda_phase_duration_seconds_count{phase="cdg.verify"} 1`,
		`ebda_phase_spans_total{phase="cdg.verify"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1})
	p := r.Phase("p", "")
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(0.5)
				sp := p.StartWorker(w)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
	if got := h.Sum(); got != workers*each*0.5 {
		t.Fatalf("histogram sum = %v, want %v", got, workers*each*0.5)
	}
	pv, _ := r.Snapshot().Phase("p")
	if pv.Count != workers*each {
		t.Fatalf("phase count = %d, want %d", pv.Count, workers*each)
	}
}

// TestRecordPathAllocFree pins the tentpole property: recording a metric
// from a hot path allocates nothing.
func TestRecordPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DurationBuckets)
	p := r.Phase("p", "")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-1) }); n != 0 {
		t.Fatalf("Gauge record allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1e-4) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp := p.StartWorker(3)
		sp.End()
	}); n != 0 {
		t.Fatalf("Span start/end allocates %.1f/op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("h", "", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-5)
	}
}

func BenchmarkSpan(b *testing.B) {
	r := NewRegistry()
	p := r.Phase("p", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := p.Start()
		sp.End()
	}
}
