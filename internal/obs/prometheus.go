package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers per family, counter and
// gauge samples, and full histogram expositions with cumulative _bucket
// series, _sum and _count. Phase tables are exported as the
// ebda_phase_spans_total / ebda_phase_seconds_total counter families plus
// the per-phase duration histograms already registered by Phase.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	return writeProm(w, s, help)
}

// WritePrometheus renders a snapshot without HELP text (the Registry
// method carries the registered help strings).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	return writeProm(w, s, nil)
}

func writeProm(w io.Writer, s Snapshot, help map[string]string) error {
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	header := func(done map[string]bool, base, typ string) {
		if done[base] {
			return
		}
		done[base] = true
		if h := help[base]; h != "" {
			emit("# HELP %s %s\n", base, h)
		}
		emit("# TYPE %s %s\n", base, typ)
	}

	counterDone := map[string]bool{}
	for _, c := range s.Counters {
		base, labels := splitSeries(c.Name)
		header(counterDone, base, "counter")
		emit("%s %d\n", series(base, labels), c.Value)
	}
	gaugeDone := map[string]bool{}
	for _, g := range s.Gauges {
		base, labels := splitSeries(g.Name)
		header(gaugeDone, base, "gauge")
		emit("%s %d\n", series(base, labels), g.Value)
	}
	phaseDone := map[string]bool{}
	for _, p := range s.Phases {
		header(phaseDone, "ebda_phase_spans_total", "counter")
		emit("%s %d\n", series("ebda_phase_spans_total", phaseLabel(p.Name)), p.Count)
	}
	for _, p := range s.Phases {
		header(phaseDone, "ebda_phase_seconds_total", "counter")
		emit("%s %s\n", series("ebda_phase_seconds_total", phaseLabel(p.Name)), formatFloat(p.TotalSeconds))
	}
	histDone := map[string]bool{}
	for _, h := range s.Histograms {
		base, labels := splitSeries(h.Name)
		header(histDone, base, "histogram")
		cum := uint64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			emit("%s %d\n", series(base+"_bucket", joinLabels(labels, `le="`+formatFloat(bound)+`"`)), cum)
		}
		emit("%s %d\n", series(base+"_bucket", joinLabels(labels, `le="+Inf"`)), h.Count)
		emit("%s %s\n", series(base+"_sum", labels), formatFloat(h.Sum))
		emit("%s %d\n", series(base+"_count", labels), h.Count)
	}
	return err
}

// splitSeries separates "name{k=\"v\"}" into the base name and the label
// body (without braces).
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// series renders base plus an optional label body.
func series(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// joinLabels merges two label bodies with a comma.
func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// phaseLabel renders the phase label body for the phase counter families.
func phaseLabel(name string) string { return `phase="` + name + `"` }

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation).
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
