// Package obs is the engine's observability layer: lock-free counters,
// gauges and fixed-bucket histograms in a deterministic registry, plus
// span-style phase tracing that aggregates into a phase table. The record
// path — Counter.Add, Gauge.Set, Histogram.Observe, Phase.Start/Span.End —
// is a handful of atomic operations and allocates nothing, so it is cheap
// enough to live inside //ebda:hotpath functions; the hotpath analyzer and
// an allocs-per-op test pin that property.
//
// Exposition is pull-based: Registry.Snapshot renders the whole registry
// into a sorted, JSON-serialisable value, Sub turns two snapshots into a
// per-run delta, Canonical zeroes the timing-dependent fields so two runs
// of a deterministic workload compare byte-identical, and WritePrometheus
// renders the Prometheus text format (the obshttp subpackage serves it
// over HTTP together with /debug/vars and net/http/pprof).
//
// Series names follow Prometheus conventions (ebda_*_total for counters).
// A single label is supported by baking it into the registry key via
// Label; labeled series are hoisted to package variables at init so the
// hot path never formats a name.
package obs

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use, but counters should be obtained from a Registry so they appear
// in snapshots.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
//ebda:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//ebda:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
//
//ebda:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative deltas decrease it).
//
//ebda:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a deterministic collection of named metrics. Lookups are
// get-or-create and goroutine-safe; snapshots render every series sorted
// by name, so identical workloads produce identical output regardless of
// registration or scheduling order.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	phases     map[string]*Phase
	// help maps a series' base name (the part before any label) to its
	// HELP text; the first non-empty registration wins.
	help map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		phases:     map[string]*Phase{},
		help:       map[string]string{},
	}
}

// Default is the process-wide registry behind the package-level
// constructors; the engine's instrumentation and every command's
// -obs/-obs-json flags share it.
var Default = NewRegistry()

// Label renders a single-label series name, e.g.
//
//	Label("ebda_sim_diagnose_total", "outcome", "cycle")
//
// returns `ebda_sim_diagnose_total{outcome="cycle"}`. The full string is
// the registry key; hoist labeled series to package variables so the
// record path never formats names.
func Label(name, key, value string) string {
	return name + "{" + key + `="` + value + `"}`
}

// baseName strips the label part of a series name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns the named counter, creating and registering it on first
// use. help documents the series (rendered as # HELP); later calls may
// pass "".
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	if base := baseName(name); help != "" && r.help[base] == "" {
		r.help[base] = help
	}
	return c
}

// Gauge returns the named gauge, creating and registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	if base := baseName(name); help != "" && r.help[base] == "" {
		r.help[base] = help
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending; a +Inf bucket is implicit) on first
// use. Bounds are ignored when the histogram already exists.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := newHistogram(bounds)
	r.histograms[name] = h
	if base := baseName(name); help != "" && r.help[base] == "" {
		r.help[base] = help
	}
	return h
}

// phaseHistName is the shared histogram family every phase's span
// durations feed, labeled by phase name.
const phaseHistName = "ebda_phase_duration_seconds"

// Phase returns the named phase, creating and registering it on first
// use. parent names the enclosing phase ("" for a root); it is reported
// in snapshots so the phase table reads as a tree. Each phase also
// registers an ebda_phase_duration_seconds{phase="name"} histogram fed by
// its spans.
func (r *Registry) Phase(name, parent string) *Phase {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.phases[name]; ok {
		return p
	}
	hname := Label(phaseHistName, "phase", name)
	h, ok := r.histograms[hname]
	if !ok {
		h = newHistogram(DurationBuckets)
		r.histograms[hname] = h
		if r.help[phaseHistName] == "" {
			r.help[phaseHistName] = "span wall durations per phase"
		}
	}
	p := &Phase{name: name, parent: parent, hist: h}
	r.phases[name] = p
	return p
}

// NewCounter registers name in the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers name in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewHistogram registers name in the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.Histogram(name, help, bounds)
}

// NewPhase registers name in the Default registry.
func NewPhase(name, parent string) *Phase { return Default.Phase(name, parent) }
