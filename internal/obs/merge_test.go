package obs

import (
	"reflect"
	"testing"
)

func TestMergeSumsAndUnions(t *testing.T) {
	a := Snapshot{
		Counters: []CounterVal{{Name: "a_total", Value: 3}, {Name: "shared_total", Value: 10}},
		Gauges:   []GaugeVal{{Name: "depth", Value: 2}},
		Histograms: []HistogramVal{{
			Name: "lat", Bounds: []float64{1, 2}, Counts: []uint64{1, 2, 3}, Sum: 4.5, Count: 6,
		}},
		Phases: []PhaseVal{{
			Name: "verify", Count: 4, TotalSeconds: 1.5, MaxSeconds: 0.5,
			Workers: []WorkerVal{{Worker: 0, Seconds: 1.0}, {Worker: 2, Seconds: 0.5}},
		}},
	}
	b := Snapshot{
		Counters: []CounterVal{{Name: "b_total", Value: 7}, {Name: "shared_total", Value: 5}},
		Gauges:   []GaugeVal{{Name: "depth", Value: 1}, {Name: "extra", Value: 9}},
		Histograms: []HistogramVal{{
			Name: "lat", Bounds: []float64{1, 2}, Counts: []uint64{2, 0, 1}, Sum: 1.5, Count: 3,
		}},
		Phases: []PhaseVal{{
			Name: "verify", Count: 2, TotalSeconds: 0.5, MaxSeconds: 0.9,
			Workers: []WorkerVal{{Worker: 1, Seconds: 0.3}, {Worker: 2, Seconds: 0.2}},
		}},
	}

	m := a.Merge(b)

	wantCounters := []CounterVal{
		{Name: "a_total", Value: 3}, {Name: "b_total", Value: 7}, {Name: "shared_total", Value: 15},
	}
	if !reflect.DeepEqual(m.Counters, wantCounters) {
		t.Errorf("counters = %+v, want %+v", m.Counters, wantCounters)
	}
	wantGauges := []GaugeVal{{Name: "depth", Value: 3}, {Name: "extra", Value: 9}}
	if !reflect.DeepEqual(m.Gauges, wantGauges) {
		t.Errorf("gauges = %+v, want %+v", m.Gauges, wantGauges)
	}
	h := m.Histograms[0]
	if !reflect.DeepEqual(h.Counts, []uint64{3, 2, 4}) || h.Sum != 6 || h.Count != 9 {
		t.Errorf("histogram = %+v, want bucket-wise sum", h)
	}
	p := m.Phases[0]
	if p.Count != 6 || p.TotalSeconds != 2.0 || p.MaxSeconds != 0.9 {
		t.Errorf("phase = %+v, want count 6 total 2.0 max 0.9", p)
	}
	wantWorkers := []WorkerVal{{Worker: 0, Seconds: 1.0}, {Worker: 1, Seconds: 0.3}, {Worker: 2, Seconds: 0.7}}
	if !reflect.DeepEqual(p.Workers, wantWorkers) {
		t.Errorf("workers = %+v, want %+v", p.Workers, wantWorkers)
	}
}

func TestMergeCommutesOnCanonical(t *testing.T) {
	a := Snapshot{
		Counters: []CounterVal{{Name: "x", Value: 1}, {Name: "y", Value: 2}},
		Phases:   []PhaseVal{{Name: "p", Count: 1}},
	}
	b := Snapshot{
		Counters: []CounterVal{{Name: "y", Value: 3}, {Name: "z", Value: 4}},
		Phases:   []PhaseVal{{Name: "p", Count: 2}, {Name: "q", Count: 1}},
	}
	ab, ba := a.Merge(b).Canonical(), b.Merge(a).Canonical()
	if !reflect.DeepEqual(ab, ba) {
		t.Errorf("Merge not commutative on canonical snapshots:\nab=%+v\nba=%+v", ab, ba)
	}
}

func TestMergeMismatchedBucketsKeepsReceiverShape(t *testing.T) {
	a := Snapshot{Histograms: []HistogramVal{{
		Name: "lat", Bounds: []float64{1}, Counts: []uint64{1, 2}, Sum: 2, Count: 3,
	}}}
	b := Snapshot{Histograms: []HistogramVal{{
		Name: "lat", Bounds: []float64{5}, Counts: []uint64{4, 0}, Sum: 3, Count: 4,
	}}}
	h := a.Merge(b).Histograms[0]
	if !reflect.DeepEqual(h.Bounds, []float64{1}) || !reflect.DeepEqual(h.Counts, []uint64{1, 2}) {
		t.Errorf("mismatched shapes must keep receiver buckets untouched, got %+v", h)
	}
	if h.Sum != 5 || h.Count != 7 {
		t.Errorf("Sum/Count must still combine, got %+v", h)
	}
}

func TestMergeWithEmpty(t *testing.T) {
	a := Snapshot{Counters: []CounterVal{{Name: "x", Value: 1}}}
	if got := a.Merge(Snapshot{}); !reflect.DeepEqual(got.Counters, a.Counters) {
		t.Errorf("merge with empty = %+v, want %+v", got.Counters, a.Counters)
	}
	if got := (Snapshot{}).Merge(a); !reflect.DeepEqual(got.Counters, a.Counters) {
		t.Errorf("empty merge = %+v, want %+v", got.Counters, a.Counters)
	}
}
