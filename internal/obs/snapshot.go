package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CounterVal is one counter series in a snapshot.
type CounterVal struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeVal is one gauge series in a snapshot.
type GaugeVal struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramVal is one histogram series in a snapshot. Counts has one
// entry per bound plus the trailing +Inf bucket.
type HistogramVal struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// WorkerVal attributes part of a phase's wall time to one worker index.
type WorkerVal struct {
	Worker  int     `json:"worker"`
	Seconds float64 `json:"seconds"`
}

// PhaseVal is one row of the phase table.
type PhaseVal struct {
	Name         string      `json:"name"`
	Parent       string      `json:"parent,omitempty"`
	Count        uint64      `json:"count"`
	TotalSeconds float64     `json:"total_seconds"`
	MaxSeconds   float64     `json:"max_seconds"`
	Workers      []WorkerVal `json:"workers,omitempty"`
}

// Snapshot is a point-in-time rendering of a registry: every series
// sorted by name, so identical workloads serialise identically. It is the
// unit the -obs-json dump, the /debug/vars endpoint, the -cachestats
// delta and the obs-smoke determinism check all share.
type Snapshot struct {
	Counters   []CounterVal   `json:"counters"`
	Gauges     []GaugeVal     `json:"gauges,omitempty"`
	Histograms []HistogramVal `json:"histograms,omitempty"`
	Phases     []PhaseVal     `json:"phases,omitempty"`
}

// Snapshot renders the registry's current state with every section sorted
// by series name.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.mu.Lock()
	defer r.mu.Unlock()

	cnames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		s.Counters = append(s.Counters, CounterVal{Name: n, Value: r.counters[n].Value()})
	}

	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		s.Gauges = append(s.Gauges, GaugeVal{Name: n, Value: r.gauges[n].Value()})
	}

	hnames := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := r.histograms[n]
		counts := make([]uint64, len(h.counts))
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, HistogramVal{
			Name:   n,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: counts,
			Sum:    h.Sum(),
			Count:  h.Count(),
		})
	}

	pnames := make([]string, 0, len(r.phases))
	for n := range r.phases {
		pnames = append(pnames, n)
	}
	sort.Strings(pnames)
	for _, n := range pnames {
		p := r.phases[n]
		pv := PhaseVal{
			Name:         n,
			Parent:       p.parent,
			Count:        p.count.Load(),
			TotalSeconds: float64(p.totalNanos.Load()) / 1e9,
			MaxSeconds:   float64(p.maxNanos.Load()) / 1e9,
		}
		for w := 0; w < maxWorkers; w++ {
			if ns := p.workerNanos[w].Load(); ns != 0 {
				pv.Workers = append(pv.Workers, WorkerVal{Worker: w, Seconds: float64(ns) / 1e9})
			}
		}
		s.Phases = append(s.Phases, pv)
	}
	return s
}

// Counter returns the value of the named counter series, or 0 when the
// snapshot has no such series.
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Phase returns the named phase row and whether it exists.
func (s Snapshot) Phase(name string) (PhaseVal, bool) {
	for _, p := range s.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseVal{}, false
}

// Histogram returns the named histogram row and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramVal, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramVal{}, false
}

// Sub returns this snapshot minus prev: counters, histogram counts/sums
// and phase count/total/worker columns subtract series-wise (series
// missing from prev pass through whole); gauges and phase maxima are
// instantaneous, so the current value is kept. Use a before/after pair
// around a run to report that run alone.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	prevCounters := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevCounters[c.Name] = c.Value
	}
	prevHists := make(map[string]HistogramVal, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevHists[h.Name] = h
	}
	prevPhases := make(map[string]PhaseVal, len(prev.Phases))
	for _, p := range prev.Phases {
		prevPhases[p.Name] = p
	}

	out := Snapshot{}
	for _, c := range s.Counters {
		v := c.Value - prevCounters[c.Name]
		if prevCounters[c.Name] > c.Value {
			v = 0 // the underlying series was reset between snapshots
		}
		out.Counters = append(out.Counters, CounterVal{Name: c.Name, Value: v})
	}
	out.Gauges = append(out.Gauges, s.Gauges...)
	for _, h := range s.Histograms {
		p, ok := prevHists[h.Name]
		if !ok || len(p.Counts) != len(h.Counts) {
			out.Histograms = append(out.Histograms, h)
			continue
		}
		d := HistogramVal{
			Name:   h.Name,
			Bounds: h.Bounds,
			Counts: make([]uint64, len(h.Counts)),
			Sum:    h.Sum - p.Sum,
			Count:  h.Count - p.Count,
		}
		for i := range h.Counts {
			d.Counts[i] = h.Counts[i] - p.Counts[i]
		}
		out.Histograms = append(out.Histograms, d)
	}
	for _, ph := range s.Phases {
		p, ok := prevPhases[ph.Name]
		if !ok {
			out.Phases = append(out.Phases, ph)
			continue
		}
		d := PhaseVal{
			Name:         ph.Name,
			Parent:       ph.Parent,
			Count:        ph.Count - p.Count,
			TotalSeconds: ph.TotalSeconds - p.TotalSeconds,
			MaxSeconds:   ph.MaxSeconds, // maxima do not subtract
		}
		prevW := make(map[int]float64, len(p.Workers))
		for _, w := range p.Workers {
			prevW[w.Worker] = w.Seconds
		}
		for _, w := range ph.Workers {
			if sec := w.Seconds - prevW[w.Worker]; sec != 0 {
				d.Workers = append(d.Workers, WorkerVal{Worker: w.Worker, Seconds: sec})
			}
		}
		out.Phases = append(out.Phases, d)
	}
	return out
}

// Canonical returns the snapshot with every timing-dependent field zeroed
// — phase totals, maxima and worker attributions, histogram bucket counts
// and sums — keeping the deterministic structure: series names, counter
// values, gauge values, phase and histogram observation counts. Two runs
// of a deterministic workload have equal Canonical snapshots.
func (s Snapshot) Canonical() Snapshot {
	out := Snapshot{Counters: append([]CounterVal(nil), s.Counters...)}
	out.Gauges = append(out.Gauges, s.Gauges...)
	for _, h := range s.Histograms {
		out.Histograms = append(out.Histograms, HistogramVal{Name: h.Name, Count: h.Count})
	}
	for _, p := range s.Phases {
		out.Phases = append(out.Phases, PhaseVal{Name: p.Name, Parent: p.Parent, Count: p.Count})
	}
	return out
}

// Filter keeps only the series whose name starts with prefix (phase rows
// match on their phase name).
func (s Snapshot) Filter(prefix string) Snapshot {
	out := Snapshot{}
	for _, c := range s.Counters {
		if strings.HasPrefix(c.Name, prefix) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if strings.HasPrefix(g.Name, prefix) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if strings.HasPrefix(h.Name, prefix) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	for _, p := range s.Phases {
		if strings.HasPrefix(p.Name, prefix) {
			out.Phases = append(out.Phases, p)
		}
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON. The section slices are
// sorted by name, so the byte stream is deterministic for deterministic
// values.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseSnapshot decodes a snapshot previously written by WriteJSON.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: bad snapshot: %w", err)
	}
	return s, nil
}

// WriteText renders the snapshot as an aligned human-readable report (the
// shared renderer behind -cachestats and friends). Empty sections are
// omitted.
func (s Snapshot) WriteText(w io.Writer) error {
	if len(s.Counters) > 0 {
		if _, err := fmt.Fprintln(w, "counters:"); err != nil {
			return err
		}
		for _, c := range s.Counters {
			if _, err := fmt.Fprintf(w, "  %-48s %d\n", c.Name, c.Value); err != nil {
				return err
			}
		}
	}
	if len(s.Gauges) > 0 {
		if _, err := fmt.Fprintln(w, "gauges:"); err != nil {
			return err
		}
		for _, g := range s.Gauges {
			if _, err := fmt.Fprintf(w, "  %-48s %d\n", g.Name, g.Value); err != nil {
				return err
			}
		}
	}
	if len(s.Phases) > 0 {
		if _, err := fmt.Fprintln(w, "phases:"); err != nil {
			return err
		}
		for _, p := range s.Phases {
			name := p.Name
			if p.Parent != "" {
				name = p.Parent + " > " + p.Name
			}
			if _, err := fmt.Fprintf(w, "  %-48s count %-8d total %.6fs  max %.6fs\n",
				name, p.Count, p.TotalSeconds, p.MaxSeconds); err != nil {
				return err
			}
		}
	}
	if len(s.Histograms) > 0 {
		if _, err := fmt.Fprintln(w, "histograms:"); err != nil {
			return err
		}
		for _, h := range s.Histograms {
			if _, err := fmt.Fprintf(w, "  %-48s count %-8d sum %.6f\n", h.Name, h.Count, h.Sum); err != nil {
				return err
			}
		}
	}
	return nil
}
