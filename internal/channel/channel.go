// Package channel defines the abstract channel model the EbDa theory is
// stated in: a channel class names one unidirectional (virtual) channel
// family of an n-dimensional network, such as X1+ (the first virtual channel
// in the positive X direction) or Ye* (the Y channels located in even
// columns).
//
// A class is identified by four components:
//
//   - a dimension (X, Y, Z, T, ... for arbitrarily many dimensions),
//   - a sign (positive or negative direction along that dimension),
//   - a virtual-channel number (1-based; 1 when the dimension has a single
//     channel), and
//   - an optional coordinate-parity restriction, used by designs such as
//     Odd-Even (Y channels split by column parity) and the Hamiltonian-path
//     strategy (X channels split by row parity).
//
// Classes are pure values; they compare with == and are usable as map keys.
package channel

import (
	"fmt"
	"strings"
)

// Dim identifies a network dimension. The first four dimensions are
// conventionally named X, Y, Z and T (as in the paper); higher dimensions
// print as D4, D5, ...
type Dim int

// Conventional dimension names.
const (
	X Dim = iota
	Y
	Z
	T
)

var dimNames = [...]string{"X", "Y", "Z", "T"}

// String returns the conventional name of the dimension.
func (d Dim) String() string {
	if d >= 0 && int(d) < len(dimNames) {
		return dimNames[d]
	}
	return fmt.Sprintf("D%d", int(d))
}

// ParseDim parses a dimension name as produced by Dim.String.
func ParseDim(s string) (Dim, error) {
	for i, n := range dimNames {
		if s == n {
			return Dim(i), nil
		}
	}
	var n int
	if _, err := fmt.Sscanf(s, "D%d", &n); err == nil && n >= 0 {
		return Dim(n), nil
	}
	return 0, fmt.Errorf("channel: unknown dimension %q", s)
}

// Sign is the direction along a dimension: positive or negative.
type Sign int8

// The two directions of a dimension.
const (
	Plus  Sign = +1
	Minus Sign = -1
)

// String returns "+" or "-".
func (s Sign) String() string {
	if s == Plus {
		return "+"
	}
	return "-"
}

// Opposite returns the other direction.
func (s Sign) Opposite() Sign { return -s }

// Parity restricts a class to channels whose position has a given coordinate
// parity in some dimension (see Class.PDim). Any means unrestricted.
type Parity int8

// Parity values.
const (
	Any Parity = iota
	Even
	Odd
)

// String returns "", "e" or "o" — the subscript notation used in the paper
// (Ye, Yo).
func (p Parity) String() string {
	switch p {
	case Even:
		return "e"
	case Odd:
		return "o"
	default:
		return ""
	}
}

// Matches reports whether a coordinate value belongs to the parity class.
func (p Parity) Matches(coord int) bool {
	switch p {
	case Even:
		return coord%2 == 0
	case Odd:
		return coord%2 != 0
	default:
		return true
	}
}

// Opposite returns the complementary parity; Any maps to Any.
func (p Parity) Opposite() Parity {
	switch p {
	case Even:
		return Odd
	case Odd:
		return Even
	default:
		return Any
	}
}

// Class identifies one abstract channel family.
//
// The zero value is not a valid class (its Sign is 0); construct classes
// with New, NewVC or NewParity.
type Class struct {
	// Dim is the dimension the channel moves along.
	Dim Dim
	// Sign is the direction of movement along Dim.
	Sign Sign
	// VC is the 1-based virtual-channel number. Networks without virtual
	// channels use VC 1 throughout.
	VC int
	// PDim is the dimension whose coordinate the parity restriction
	// applies to. Only meaningful when Par != Any. In the Odd-Even model
	// the Y channels are split by the X (column) coordinate: PDim == X.
	PDim Dim
	// Par restricts the class to positions with the given coordinate
	// parity in PDim; Any means no restriction.
	Par Parity
}

// New returns the class for direction d·s with a single (implicit) virtual
// channel.
func New(d Dim, s Sign) Class { return Class{Dim: d, Sign: s, VC: 1} }

// NewVC returns the class for virtual channel vc (1-based) in direction d·s.
func NewVC(d Dim, s Sign, vc int) Class { return Class{Dim: d, Sign: s, VC: vc} }

// NewParity returns the class for direction d·s restricted to positions
// whose coordinate in dimension pdim has parity par.
func NewParity(d Dim, s Sign, pdim Dim, par Parity) Class {
	return Class{Dim: d, Sign: s, VC: 1, PDim: pdim, Par: par}
}

// Valid reports whether the class is well formed: a recognised sign, a
// positive VC number, and a parity restriction (if any) on a different
// dimension than the channel's own.
func (c Class) Valid() bool {
	if c.Sign != Plus && c.Sign != Minus {
		return false
	}
	if c.VC < 1 {
		return false
	}
	if c.Par != Any && c.PDim == c.Dim {
		// A channel moves along its own dimension, so its coordinate
		// there is not fixed; parity classes must reference an
		// orthogonal dimension.
		return false
	}
	return true
}

// Opposite returns the class with the direction reversed and all other
// components unchanged.
func (c Class) Opposite() Class {
	c.Sign = c.Sign.Opposite()
	return c
}

// WithVC returns a copy of the class with the virtual-channel number
// replaced.
func (c Class) WithVC(vc int) Class {
	c.VC = vc
	return c
}

// SameDim reports whether two classes move along the same dimension.
func (c Class) SameDim(o Class) bool { return c.Dim == o.Dim }

// Overlaps reports whether two classes can denote a common concrete channel:
// same dimension, direction and VC, with compatible parity restrictions.
// Classes with parity restrictions in different dimensions are conservatively
// treated as overlapping (they intersect on half the network).
func (c Class) Overlaps(o Class) bool {
	if c.Dim != o.Dim || c.Sign != o.Sign || c.VC != o.VC {
		return false
	}
	if c.Par == Any || o.Par == Any {
		return true
	}
	if c.PDim != o.PDim {
		return true // orthogonal parity restrictions intersect
	}
	return c.Par == o.Par
}

// String renders the class in the paper's notation: dimension, VC number,
// optional parity subscript, sign — e.g. "X1+", "Y2-", "Ye+" (parity classes
// omit the VC number when it is 1, matching the paper's Ye*/Yo* notation).
func (c Class) String() string {
	var b strings.Builder
	b.WriteString(c.Dim.String())
	if c.Par != Any {
		b.WriteString(c.Par.String())
		if c.VC != 1 {
			fmt.Fprintf(&b, "%d", c.VC)
		}
	} else {
		fmt.Fprintf(&b, "%d", c.VC)
	}
	b.WriteString(c.Sign.String())
	return b.String()
}

// Plain renders the class without the VC number when it is 1: "X+", "Y2-".
// This matches the paper's notation for networks without virtual channels.
func (c Class) Plain() string {
	if c.VC == 1 {
		return c.Dim.String() + c.Par.String() + c.Sign.String()
	}
	return c.String()
}

// shortLetters maps (dim, sign) to the compass letters used in the paper's
// figures: E/W for X+/X-, N/S for Y+/Y-, U/D for Z+/Z-.
var shortLetters = map[Dim][2]string{
	X: {"E", "W"},
	Y: {"N", "S"},
	Z: {"U", "D"},
}

// Short renders the class in the compass notation of the paper's Figure 8:
// E1, W2, N1, S2, U3, D4. Dimensions beyond Z fall back to String notation.
// Parity classes append the parity subscript (Ne, So) before the VC number,
// matching Table 4.
func (c Class) Short() string {
	letters, ok := shortLetters[c.Dim]
	if !ok {
		return c.String()
	}
	letter := letters[0]
	if c.Sign == Minus {
		letter = letters[1]
	}
	var b strings.Builder
	b.WriteString(letter)
	if c.Par != Any {
		b.WriteString(c.Par.String())
		if c.VC != 1 {
			fmt.Fprintf(&b, "%d", c.VC)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%d", c.VC)
	return b.String()
}

// ShortPlain is Short without the VC number when it is 1: E, W2, Ne, So.
func (c Class) ShortPlain() string {
	if c.VC == 1 {
		letters, ok := shortLetters[c.Dim]
		if !ok {
			return c.Plain()
		}
		letter := letters[0]
		if c.Sign == Minus {
			letter = letters[1]
		}
		return letter + c.Par.String()
	}
	return c.Short()
}

// Compare orders classes lexicographically by (Dim, Sign with + first, VC,
// PDim, Par). It returns -1, 0 or +1.
func (c Class) Compare(o Class) int {
	switch {
	case c.Dim != o.Dim:
		if c.Dim < o.Dim {
			return -1
		}
		return 1
	case c.Sign != o.Sign:
		if c.Sign == Plus {
			return -1
		}
		return 1
	case c.VC != o.VC:
		if c.VC < o.VC {
			return -1
		}
		return 1
	case c.PDim != o.PDim:
		if c.PDim < o.PDim {
			return -1
		}
		return 1
	case c.Par != o.Par:
		if c.Par < o.Par {
			return -1
		}
		return 1
	}
	return 0
}

// Parse parses a class from the paper's notation as produced by String or
// Plain: "X+", "X1+", "Y2-", "Ye+", "Yo2-". Parity classes use PDim = X for
// Y/Z/... channels and PDim = Y for X channels (column parity for non-X
// channels, row parity for X channels), which covers the paper's Odd-Even
// and Hamiltonian-path usage.
func Parse(s string) (Class, error) {
	orig := s
	if len(s) < 2 {
		return Class{}, fmt.Errorf("channel: malformed class %q", orig)
	}
	// Sign is the last byte.
	var sign Sign
	switch s[len(s)-1] {
	case '+':
		sign = Plus
	case '-':
		sign = Minus
	default:
		return Class{}, fmt.Errorf("channel: malformed class %q: missing sign", orig)
	}
	s = s[:len(s)-1]
	// Dimension name is a leading run of letters/digits matching a known
	// dimension; try the longest prefixes first (D10 before D1).
	var dim Dim
	var rest string
	found := false
	for i := len(s); i >= 1; i-- {
		if d, err := ParseDim(s[:i]); err == nil {
			// Guard against consuming parity/VC suffix into a D%d name:
			// prefer the shortest valid prefix for single-letter dims.
			dim, rest, found = d, s[i:], true
			if i == 1 {
				break
			}
		}
	}
	// Prefer single-letter match when available.
	if d, err := ParseDim(s[:1]); err == nil {
		dim, rest, found = d, s[1:], true
	}
	if !found {
		return Class{}, fmt.Errorf("channel: malformed class %q: unknown dimension", orig)
	}
	c := Class{Dim: dim, Sign: sign, VC: 1}
	if rest != "" && (rest[0] == 'e' || rest[0] == 'o') {
		if rest[0] == 'e' {
			c.Par = Even
		} else {
			c.Par = Odd
		}
		if dim == X {
			c.PDim = Y
		} else {
			c.PDim = X
		}
		rest = rest[1:]
	}
	if rest != "" {
		var vc int
		if _, err := fmt.Sscanf(rest, "%d", &vc); err != nil || vc < 1 {
			return Class{}, fmt.Errorf("channel: malformed class %q: bad VC %q", orig, rest)
		}
		c.VC = vc
	}
	if !c.Valid() {
		return Class{}, fmt.Errorf("channel: invalid class %q", orig)
	}
	return c, nil
}

// MustParse is Parse that panics on error; intended for constants in tests
// and examples.
func MustParse(s string) Class {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseList parses a whitespace- or comma-separated list of classes.
func ParseList(s string) ([]Class, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t' || r == '\n'
	})
	out := make([]Class, 0, len(fields))
	for _, f := range fields {
		c, err := Parse(f)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// MustParseList is ParseList that panics on error.
func MustParseList(s string) []Class {
	cs, err := ParseList(s)
	if err != nil {
		panic(err)
	}
	return cs
}

// Format renders a list of classes separated by spaces, in String notation.
func Format(cs []Class) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// FormatPlain renders a list of classes separated by spaces, in Plain
// notation.
func FormatPlain(cs []Class) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.Plain()
	}
	return strings.Join(parts, " ")
}
