package channel

import "testing"

// FuzzParse checks the parser never panics and that everything it accepts
// round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"X+", "X1+", "Y2-", "Ye+", "Yo2-", "Z4+", "T1-", "D5+",
		"", "X", "+", "X0+", "Q9-", "Xe", "Yee+", "X99999999999999999+",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Parse(s)
		if err != nil {
			return
		}
		if !c.Valid() {
			t.Fatalf("Parse(%q) returned invalid class %+v", s, c)
		}
		back, err := Parse(c.String())
		if err != nil {
			t.Fatalf("String(%q) = %q does not re-parse: %v", s, c.String(), err)
		}
		if back != c {
			t.Fatalf("round trip %q: %v != %v", s, back, c)
		}
	})
}
