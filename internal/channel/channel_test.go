package channel

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDimString(t *testing.T) {
	cases := map[Dim]string{X: "X", Y: "Y", Z: "Z", T: "T", Dim(4): "D4", Dim(9): "D9"}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Dim(%d).String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestParseDim(t *testing.T) {
	for _, d := range []Dim{X, Y, Z, T, Dim(4), Dim(12)} {
		got, err := ParseDim(d.String())
		if err != nil {
			t.Fatalf("ParseDim(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("ParseDim(%q) = %v, want %v", d.String(), got, d)
		}
	}
	if _, err := ParseDim("Q"); err == nil {
		t.Error("ParseDim(Q) should fail")
	}
}

func TestSign(t *testing.T) {
	if Plus.Opposite() != Minus || Minus.Opposite() != Plus {
		t.Error("Opposite broken")
	}
	if Plus.String() != "+" || Minus.String() != "-" {
		t.Error("Sign.String broken")
	}
}

func TestParityMatches(t *testing.T) {
	if !Any.Matches(3) || !Any.Matches(4) {
		t.Error("Any should match everything")
	}
	if !Even.Matches(0) || !Even.Matches(2) || Even.Matches(1) {
		t.Error("Even parity broken")
	}
	if !Odd.Matches(1) || !Odd.Matches(3) || Odd.Matches(2) {
		t.Error("Odd parity broken")
	}
	if Even.Opposite() != Odd || Odd.Opposite() != Even || Any.Opposite() != Any {
		t.Error("Parity.Opposite broken")
	}
}

func TestClassString(t *testing.T) {
	cases := []struct {
		c          Class
		str, plain string
	}{
		{New(X, Plus), "X1+", "X+"},
		{New(Y, Minus), "Y1-", "Y-"},
		{NewVC(X, Plus, 2), "X2+", "X2+"},
		{NewVC(Z, Minus, 4), "Z4-", "Z4-"},
		{NewParity(Y, Plus, X, Even), "Ye+", "Ye+"},
		{NewParity(X, Minus, Y, Odd), "Xo-", "Xo-"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.str {
			t.Errorf("String() = %q, want %q", got, tc.str)
		}
		if got := tc.c.Plain(); got != tc.plain {
			t.Errorf("Plain() = %q, want %q", got, tc.plain)
		}
	}
}

func TestClassShort(t *testing.T) {
	cases := []struct {
		c           Class
		short, bare string
	}{
		{New(X, Plus), "E1", "E"},
		{New(X, Minus), "W1", "W"},
		{NewVC(Y, Plus, 2), "N2", "N2"},
		{NewVC(Y, Minus, 1), "S1", "S"},
		{NewVC(Z, Plus, 4), "U4", "U4"},
		{NewVC(Z, Minus, 3), "D3", "D3"},
		{NewParity(Y, Plus, X, Even), "Ne", "Ne"},
		{NewParity(Y, Minus, X, Odd), "So", "So"},
		{New(T, Plus), "T1+", "T+"},
	}
	for _, tc := range cases {
		if got := tc.c.Short(); got != tc.short {
			t.Errorf("%v Short() = %q, want %q", tc.c, got, tc.short)
		}
		if got := tc.c.ShortPlain(); got != tc.bare {
			t.Errorf("%v ShortPlain() = %q, want %q", tc.c, got, tc.bare)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{"X+", "X1+", "Y2-", "Z4+", "T1-", "Ye+", "Yo-", "Xe+", "Xo2-", "D4+", "D5-"}
	for _, s := range cases {
		c, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		back, err := Parse(c.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)): %v", s, err)
		}
		if back != c {
			t.Errorf("round trip %q: %v != %v", s, back, c)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "X", "+", "X0+", "Q1+", "X1", "Xq+", "Ye"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseList(t *testing.T) {
	cs, err := ParseList("X+ X-, Y2+\tZ1-")
	if err != nil {
		t.Fatal(err)
	}
	want := []Class{New(X, Plus), New(X, Minus), NewVC(Y, Plus, 2), New(Z, Minus)}
	if !reflect.DeepEqual(cs, want) {
		t.Errorf("ParseList = %v, want %v", cs, want)
	}
	if _, err := ParseList("X+ bogus"); err == nil {
		t.Error("ParseList with bogus entry should fail")
	}
}

func TestValid(t *testing.T) {
	if (Class{}).Valid() {
		t.Error("zero Class should be invalid")
	}
	if !New(X, Plus).Valid() {
		t.Error("X+ should be valid")
	}
	if (Class{Dim: X, Sign: Plus, VC: 0}).Valid() {
		t.Error("VC 0 should be invalid")
	}
	// Parity restriction on the channel's own dimension is meaningless.
	if (Class{Dim: X, Sign: Plus, VC: 1, PDim: X, Par: Even}).Valid() {
		t.Error("parity on own dimension should be invalid")
	}
}

func TestOpposite(t *testing.T) {
	c := NewVC(Y, Plus, 3)
	o := c.Opposite()
	if o.Sign != Minus || o.Dim != Y || o.VC != 3 {
		t.Errorf("Opposite = %v", o)
	}
	if o.Opposite() != c {
		t.Error("double Opposite should be identity")
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"X+", "X+", true},
		{"X+", "X-", false},
		{"X+", "Y+", false},
		{"X1+", "X2+", false},
		{"Ye+", "Yo+", false},
		{"Ye+", "Ye+", true},
		{"Ye+", "Y+", true}, // parity class overlaps the unrestricted class
		{"Ye+", "Ye-", false} /* different signs */}
	for _, tc := range cases {
		a, b := MustParse(tc.a), MustParse(tc.b)
		if got := a.Overlaps(b); got != tc.want {
			t.Errorf("Overlaps(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := b.Overlaps(a); got != tc.want {
			t.Errorf("Overlaps(%s, %s) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestOverlapsOrthogonalParity(t *testing.T) {
	// Same channel family restricted by parities of different dimensions
	// intersects on a quarter of the network.
	a := NewParity(Z, Plus, X, Even)
	b := NewParity(Z, Plus, Y, Odd)
	if !a.Overlaps(b) {
		t.Error("orthogonal parity restrictions should overlap")
	}
}

func TestCompare(t *testing.T) {
	ordered := MustParseList("X1+ X2+ X1- Y1+ Y1- Z1+")
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

// randomClass generates a valid random class for property tests.
func randomClass(r *rand.Rand) Class {
	c := Class{
		Dim:  Dim(r.Intn(4)),
		Sign: Plus,
		VC:   1 + r.Intn(4),
	}
	if r.Intn(2) == 0 {
		c.Sign = Minus
	}
	if r.Intn(3) == 0 {
		c.Par = Parity(1 + r.Intn(2))
		for {
			c.PDim = Dim(r.Intn(4))
			if c.PDim != c.Dim {
				break
			}
		}
	}
	return c
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomClass(r)
		if c.Par != Any && !(c.Dim == X && c.PDim == Y || c.Dim != X && c.PDim == X) {
			// Parse can only reconstruct the conventional parity
			// dimensions; skip others.
			return true
		}
		got, err := Parse(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapSymmetricReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomClass(r), randomClass(r)
		if !a.Overlaps(a) || !b.Overlaps(b) {
			return false
		}
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomClass(r), randomClass(r)
		ab, ba := a.Compare(b), b.Compare(a)
		if a == b {
			return ab == 0 && ba == 0
		}
		return ab == -ba && ab != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFormat(t *testing.T) {
	cs := MustParseList("X+ Y2-")
	if got := Format(cs); got != "X1+ Y2-" {
		t.Errorf("Format = %q", got)
	}
	if got := FormatPlain(cs); got != "X+ Y2-" {
		t.Errorf("FormatPlain = %q", got)
	}
}
