package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

func dyxyChain() *core.Chain {
	return core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
}

func TestFaultTolerantNoFaultsDelivers(t *testing.T) {
	net := topology.NewMesh(5, 5)
	alg := NewFaultTolerant("ft-dyxy", dyxyChain(), net)
	del := CheckDelivery(net, alg, 128)
	if !del.OK() {
		t.Fatalf("fault-free delivery: %s", del)
	}
	rep := Verify(net, cdg.VCConfig(alg.VCs()), alg)
	if !rep.Acyclic {
		t.Fatalf("fault-free relation: %s", rep)
	}
}

func TestFaultTolerantRoutesAroundSingleFault(t *testing.T) {
	base := topology.NewMesh(5, 5)
	// Kill the eastward link out of (2,2).
	faulty := base.WithoutLinks([]topology.Link{{
		From: base.ID(topology.Coord{2, 2}), Dim: channel.X, Sign: channel.Plus,
	}})
	alg := NewFaultTolerant("ft-dyxy", dyxyChain(), faulty)

	// A strict-minimal chain algorithm strands straight-east routes.
	minimal := NewFromChain("dyxy", dyxyChain(), 2)
	src := faulty.ID(topology.Coord{0, 2})
	dst := faulty.ID(topology.Coord{4, 2})
	if _, ok := walk(faulty, minimal, src, dst, 64); ok {
		t.Error("minimal routing should fail across the faulty link on a straight row")
	}
	hops, ok := walk(faulty, alg, src, dst, 64)
	if !ok {
		t.Fatal("fault-tolerant routing failed to deliver across the fault")
	}
	if hops <= 4 {
		t.Errorf("detour took %d hops, expected more than the minimal 4", hops)
	}
	// The full relation stays acyclic: the offered turns are a subset of
	// the chain's acyclic relation.
	rep := Verify(faulty, cdg.VCConfig(alg.VCs()), alg)
	if !rep.Acyclic {
		t.Fatalf("faulty relation: %s", rep)
	}
	// And every pair still delivers.
	del := CheckDelivery(faulty, alg, 128)
	if !del.OK() {
		t.Errorf("delivery with fault: %s", del)
	}
}

func TestFaultTolerantLivelockBound(t *testing.T) {
	// Livelock freedom: on an acyclic relation every walk is bounded by
	// the channel count, regardless of adaptive choices. Take random
	// (even adversarially long) walks and confirm they terminate within
	// the concrete channel count.
	base := topology.NewMesh(5, 5)
	faulty := base.WithoutLinks([]topology.Link{
		{From: base.ID(topology.Coord{2, 2}), Dim: channel.X, Sign: channel.Plus},
		{From: base.ID(topology.Coord{1, 3}), Dim: channel.Y, Sign: channel.Minus},
	})
	alg := NewFaultTolerant("ft-dyxy", dyxyChain(), faulty)
	g := cdg.NewGraph(faulty, cdg.VCConfig(alg.VCs()))
	bound := g.NumChannels()
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		src := topology.NodeID(r.Intn(faulty.Nodes()))
		dst := topology.NodeID(r.Intn(faulty.Nodes()))
		if src == dst {
			continue
		}
		cur, hops := src, 0
		var in *channel.Class
		for cur != dst {
			cands := alg.Candidates(faulty, cur, in, dst)
			if len(cands) == 0 {
				t.Fatalf("stranded at n%d toward n%d", cur, dst)
			}
			c := cands[r.Intn(len(cands))] // adversarially random choice
			next, _, ok := faulty.Neighbor(cur, c.Dim, c.Sign)
			if !ok {
				t.Fatalf("candidate over missing link at n%d", cur)
			}
			cur = next
			cls := c
			in = &cls
			hops++
			if hops > bound {
				t.Fatalf("walk exceeded the livelock bound of %d hops", bound)
			}
		}
	}
}

func TestFaultTolerantQuickRandomFaults(t *testing.T) {
	// For random small fault sets, every pair either delivers or has no
	// reachable state at injection (in which case candidates are empty
	// at the source and the failure is detected, not silent).
	base := topology.NewMesh(4, 4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var faults []topology.Link
		for i := 0; i < 1+r.Intn(3); i++ {
			from := topology.NodeID(r.Intn(base.Nodes()))
			d := channel.Dim(r.Intn(2))
			sign := channel.Plus
			if r.Intn(2) == 0 {
				sign = channel.Minus
			}
			faults = append(faults, topology.Link{From: from, Dim: d, Sign: sign})
		}
		faulty := base.WithoutLinks(faults)
		alg := NewFaultTolerant("ft", dyxyChain(), faulty)
		// Relation must stay acyclic under any fault set.
		if !Verify(faulty, cdg.VCConfig(alg.VCs()), alg).Acyclic {
			return false
		}
		g := cdg.NewGraph(faulty, cdg.VCConfig(alg.VCs()))
		bound := g.NumChannels()
		for trial := 0; trial < 20; trial++ {
			src := topology.NodeID(r.Intn(faulty.Nodes()))
			dst := topology.NodeID(r.Intn(faulty.Nodes()))
			if src == dst {
				continue
			}
			cur, hops := src, 0
			var in *channel.Class
			for cur != dst {
				cands := alg.Candidates(faulty, cur, in, dst)
				if len(cands) == 0 {
					if hops == 0 {
						break // unreachable pair, detected at injection
					}
					return false // stranded mid-route: must not happen
				}
				c := cands[r.Intn(len(cands))]
				next, _, ok := faulty.Neighbor(cur, c.Dim, c.Sign)
				if !ok {
					return false
				}
				cur, hops = next, hops+1
				cls := c
				in = &cls
				if hops > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWithoutLinksComposesWithIrregularity(t *testing.T) {
	net := topology.NewPartialMesh3D(3, 3, 2, [][2]int{{1, 1}})
	faulty := net.WithoutLinks([]topology.Link{{
		From: net.ID(topology.Coord{0, 0, 0}), Dim: channel.X, Sign: channel.Plus,
	}})
	if faulty.HasLink(net.ID(topology.Coord{0, 0, 0}), channel.X, channel.Plus) {
		t.Error("faulty link still present")
	}
	// The irregularity filter must survive: no vertical links off the
	// elevator column.
	if faulty.HasLink(net.ID(topology.Coord{0, 0, 0}), channel.Z, channel.Plus) {
		t.Error("irregularity filter lost after fault injection")
	}
	if !faulty.HasLink(net.ID(topology.Coord{1, 1, 0}), channel.Z, channel.Plus) {
		t.Error("elevator link missing")
	}
}
