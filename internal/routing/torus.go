package routing

import (
	"ebda/internal/channel"
	"ebda/internal/topology"
)

// DatelineTorus is deterministic dimension-order routing on a k-ary n-cube
// with two virtual channels per dimension and the classic dateline
// discipline: within each ring, hops whose remaining path still has to
// cross the wraparound boundary travel on VC 1; once past the boundary
// (or when the path never crosses it), hops travel on VC 2. Breaking the
// ring dependency this way is the torus counterpart of the paper's note to
// Theorem 2 (a wraparound channel is two unidirectional channels plus two
// U-turns, which must be ordered).
type DatelineTorus struct {
	// Order lists the dimension correction order; empty means ascending.
	Order []channel.Dim
}

// NewDatelineTorus returns dateline dimension-order torus routing.
func NewDatelineTorus() *DatelineTorus { return &DatelineTorus{} }

// Name implements Algorithm.
func (a *DatelineTorus) Name() string { return "dateline-torus" }

// Candidates implements Algorithm.
func (a *DatelineTorus) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	offs := net.MinimalOffsets(cur, dst)
	order := a.Order
	if len(order) == 0 {
		order = make([]channel.Dim, net.Dims())
		for d := range order {
			order[d] = channel.Dim(d)
		}
	}
	curCoord := net.Coord(cur)
	for _, d := range order {
		off := offs[d]
		if off == 0 {
			continue
		}
		sign := channel.Plus
		if off < 0 {
			sign = channel.Minus
		}
		vc := 2
		if a.crosses(net, curCoord[d], off, d) {
			vc = 1
		}
		return []channel.Class{channel.NewVC(d, sign, vc)}
	}
	return nil
}

// crosses reports whether a minimal path of the given signed offset,
// starting at coordinate x in dimension d, still crosses the wraparound
// boundary between coordinates k-1 and 0.
func (a *DatelineTorus) crosses(net *topology.Network, x, off int, d channel.Dim) bool {
	if !net.Wrap(d) {
		return false
	}
	k := net.Size(d)
	if off > 0 {
		return x+off >= k
	}
	return x+off < 0
}

// VCsPerDim returns the VC requirement of the dateline scheme (2 per
// wraparound dimension).
func (a *DatelineTorus) VCsPerDim(net *topology.Network) []int {
	out := make([]int, net.Dims())
	for d := range out {
		if net.Wrap(channel.Dim(d)) {
			out[d] = 2
		} else {
			out[d] = 1
		}
	}
	return out
}
