package routing

import (
	"fmt"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/topology"
)

// Relation adapts an Algorithm to the channel-dependency extraction of
// internal/cdg: for every (position, input channel, destination) the
// algorithm's candidate outputs become dependency edges.
func Relation(alg Algorithm) cdg.RoutingRelation {
	return func(g *cdg.Graph, at topology.NodeID, in *cdg.Channel, dst topology.NodeID) []int {
		var inCls *channel.Class
		if in != nil {
			c := in.Class()
			inCls = &c
		}
		var out []int
		for _, cand := range alg.Candidates(g.Net(), at, inCls, dst) {
			if ch, ok := g.FindChannel(at, cand.Dim, cand.Sign, cand.VC); ok {
				out = append(out, ch.Index)
			}
		}
		return out
	}
}

// Verify builds the full routing relation of an algorithm on a network
// (over all destinations) and checks the induced channel dependency graph
// for cycles — the classic Dally verification. All cores are used; the
// report is identical for every worker count.
func Verify(net *topology.Network, vcs cdg.VCConfig, alg Algorithm) cdg.Report {
	return VerifyJobs(net, vcs, alg, 0)
}

// VerifyJobs is Verify over a bounded worker pool (jobs <= 0 means all
// cores). The algorithm's Candidates is called concurrently when jobs > 1.
// The build runs in a pooled cdg.Workspace, so repeated verifications on
// the same network shape reuse the channel table and adjacency rows.
func VerifyJobs(net *topology.Network, vcs cdg.VCConfig, alg Algorithm, jobs int) cdg.Report {
	ws := cdg.DefaultPool.Get(net, vcs)
	rep := ws.VerifyRelationJobs(Relation(alg), net.String()+" / "+alg.Name(), jobs)
	cdg.DefaultPool.Put(ws)
	return rep
}

// DeliveryReport summarises a walk-based delivery check.
type DeliveryReport struct {
	Pairs    int
	Failed   int
	MaxHops  int
	Examples []string
}

// OK reports whether every pair delivered.
func (r DeliveryReport) OK() bool { return r.Failed == 0 }

// String renders the report.
func (r DeliveryReport) String() string {
	if r.OK() {
		return fmt.Sprintf("delivered all %d pairs (max %d hops)", r.Pairs, r.MaxHops)
	}
	return fmt.Sprintf("%d/%d pairs failed: %v", r.Failed, r.Pairs, r.Examples)
}

// CheckDelivery walks one route per (src, dst) pair, always taking the
// algorithm's first candidate, and verifies the walk terminates at the
// destination within hopLimit hops. For adaptive algorithms this exercises
// one representative path; it catches broken candidate functions (empty
// candidates, livelock loops, steering errors).
func CheckDelivery(net *topology.Network, alg Algorithm, hopLimit int) DeliveryReport {
	rep := DeliveryReport{}
	for src := topology.NodeID(0); int(src) < net.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < net.Nodes(); dst++ {
			if src == dst {
				continue
			}
			rep.Pairs++
			hops, ok := walk(net, alg, src, dst, hopLimit)
			if !ok {
				rep.Failed++
				if len(rep.Examples) < 5 {
					rep.Examples = append(rep.Examples,
						fmt.Sprintf("n%d->n%d", src, dst))
				}
				continue
			}
			if hops > rep.MaxHops {
				rep.MaxHops = hops
			}
		}
	}
	return rep
}

func walk(net *topology.Network, alg Algorithm, src, dst topology.NodeID, hopLimit int) (int, bool) {
	cur := src
	var in *channel.Class
	for hops := 0; hops <= hopLimit; hops++ {
		if cur == dst {
			return hops, true
		}
		cands := alg.Candidates(net, cur, in, dst)
		if len(cands) == 0 {
			return hops, false
		}
		c := cands[0]
		next, _, ok := net.Neighbor(cur, c.Dim, c.Sign)
		if !ok {
			return hops, false
		}
		cur = next
		cls := channel.NewVC(c.Dim, c.Sign, c.VC)
		in = &cls
	}
	return hopLimit, false
}
