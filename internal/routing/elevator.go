package routing

import (
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// Elevators is the set of vertical-connection columns of a vertically
// partially connected 3D network, as [x, y] positions.
type Elevators [][2]int

// Nearest returns the elevator closest (Manhattan, in the XY plane) to the
// given coordinate, breaking ties by list order.
func (e Elevators) Nearest(c topology.Coord) [2]int {
	best := e[0]
	bestDist := manhattan2(best, c)
	for _, ev := range e[1:] {
		if d := manhattan2(ev, c); d < bestDist {
			best, bestDist = ev, d
		}
	}
	return best
}

func manhattan2(e [2]int, c topology.Coord) int {
	dx := e[0] - c[0]
	if dx < 0 {
		dx = -dx
	}
	dy := e[1] - c[1]
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// ElevatorFirst is the deterministic baseline of Section 6.3 (Dubois et
// al.): XY-route to an elevator on virtual-channel set 1, descend/ascend,
// then XY-route to the destination on virtual-channel set 2. It uses 2, 2
// and 1 VCs along X, Y and Z.
type ElevatorFirst struct {
	elevators Elevators
}

// NewElevatorFirst returns the Elevator-First baseline for the given
// elevator columns.
func NewElevatorFirst(elevators Elevators) *ElevatorFirst {
	if len(elevators) == 0 {
		panic("routing: ElevatorFirst needs at least one elevator")
	}
	return &ElevatorFirst{elevators: elevators}
}

// Name implements Algorithm.
func (a *ElevatorFirst) Name() string { return "elevator-first" }

// Candidates implements Algorithm.
func (a *ElevatorFirst) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	c := net.Coord(cur)
	d := net.Coord(dst)
	if c[2] != d[2] {
		// Phase 1: XY-route on VC set 1 to the elevator nearest the
		// destination (consistent across hops), then travel vertically.
		ev := a.elevators.Nearest(d)
		if c[0] == ev[0] && c[1] == ev[1] {
			sign := channel.Plus
			if d[2] < c[2] {
				sign = channel.Minus
			}
			return []channel.Class{channel.NewVC(channel.Z, sign, 1)}
		}
		return a.xyStep(c, topology.Coord{ev[0], ev[1]}, 1)
	}
	// Phase 2 (destination layer reached, or the packet never had to
	// change layers): XY-route on VC set 2.
	return a.xyStep(c, topology.Coord{d[0], d[1]}, 2)
}

// xyStep returns the single XY dimension-order hop from c toward the XY
// target on the given VC.
func (a *ElevatorFirst) xyStep(c topology.Coord, target topology.Coord, vc int) []channel.Class {
	if c[0] != target[0] {
		sign := channel.Plus
		if target[0] < c[0] {
			sign = channel.Minus
		}
		return []channel.Class{channel.NewVC(channel.X, sign, vc)}
	}
	if c[1] != target[1] {
		sign := channel.Plus
		if target[1] < c[1] {
			sign = channel.Minus
		}
		return []channel.Class{channel.NewVC(channel.Y, sign, vc)}
	}
	return nil
}

// VCsPerDim returns Elevator-First's VC requirement: 2, 2, 1.
func (a *ElevatorFirst) VCsPerDim() []int { return []int{2, 2, 1} }

// NewEbDaElevator derives the Section 6.3 partitioned algorithm
// (Table5Chain: PA[X1+ Y1* Z1+] -> PB[X1- Y2* Z1-], 1/2/1 VCs) as a
// chain-based algorithm. It offers 30 90-degree turns against
// Elevator-First's 16, with fewer virtual channels.
//
// The partition structure constrains elevator choice: upward channels
// (Z+) live in PA together with X+ and Y1*, so an elevator must be reached
// without westward hops (its column must not lie west of the packet), and
// downward exits (after Z-, in PB) may only continue westward, so a
// descending packet's elevator must not lie west of the destination
// either. The waypoint function picks, per hop, the cheapest elevator
// satisfying those constraints; networks whose easternmost column hosts an
// elevator (as in the paper's setting) always have one.
func NewEbDaElevator(chain *core.Chain, elevators Elevators) *FromChain {
	if len(elevators) == 0 {
		panic("routing: EbDaElevator needs at least one elevator")
	}
	target := func(net *topology.Network, cur, dst topology.NodeID) topology.NodeID {
		c, d := net.Coord(cur), net.Coord(dst)
		if c[2] == d[2] {
			return dst
		}
		goingDown := d[2] < c[2]
		best := [2]int{-1, -1}
		bestCost := int(^uint(0) >> 1)
		for _, ev := range elevators {
			if ev[0] < c[0] {
				continue // unreachable without a westward (PB) hop
			}
			if goingDown && ev[0] < d[0] {
				continue // post-descent hops are westward only
			}
			cost := manhattan2(ev, c) + manhattan2(ev, d)
			if cost < bestCost {
				best, bestCost = ev, cost
			}
		}
		if best[0] < 0 {
			// No compatible elevator; fall back to the nearest one
			// (delivery will fail and be reported by CheckDelivery).
			best = elevators.Nearest(d)
		}
		if c[0] == best[0] && c[1] == best[1] {
			// At the elevator: next productive move is vertical,
			// toward the destination layer.
			return net.ID(topology.Coord{best[0], best[1], d[2]})
		}
		return net.ID(topology.Coord{best[0], best[1], c[2]})
	}
	return NewFromChainWithTarget("ebda-elevator", chain, 3, target)
}
