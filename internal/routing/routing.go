// Package routing turns deadlock-free designs into executable routing
// algorithms and provides the classic baselines the paper discusses:
// dimension-order routing, the Glass/Ni turn models (West-First,
// North-Last, Negative-First), Chiu's Odd-Even model, Elevator-First for
// vertically partially connected 3D networks, and dateline routing for
// tori.
//
// An Algorithm answers one question: given where a packet is, the channel
// it arrived on and its destination, which output channels may it request?
// The wormhole simulator (internal/sim) consumes this interface directly,
// and internal/cdg can verify any Algorithm by extracting its full routing
// relation.
package routing

import (
	"fmt"
	"sync"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// Algorithm is a distributed routing function.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Candidates returns the output channels a packet at cur may request
	// toward dst. in is the channel the packet arrived on, nil at the
	// injection port. The returned classes are concrete requests
	// (dimension, direction, VC; parity always Any). An empty result for
	// cur != dst means the algorithm is broken for that situation.
	Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class
}

// productiveDirs returns the minimal (productive) hop directions from cur
// to dst.
func productiveDirs(net *topology.Network, cur, dst topology.NodeID) []channel.Class {
	var out []channel.Class
	for d, off := range net.MinimalOffsets(cur, dst) {
		if off == 0 {
			continue
		}
		sign := channel.Plus
		if off < 0 {
			sign = channel.Minus
		}
		if net.HasLink(cur, channel.Dim(d), sign) {
			out = append(out, channel.New(channel.Dim(d), sign))
		}
	}
	return out
}

// DOR is deterministic dimension-order routing: dimensions are fully
// corrected one at a time in Order; XY routing is DOR with order {X, Y}.
type DOR struct {
	// Order lists the dimensions in correction order. Empty means
	// ascending dimension order.
	Order []channel.Dim
	// VC is the virtual channel used (1 by default).
	VC   int
	name string
}

// NewXY returns 2D XY routing.
func NewXY() *DOR { return &DOR{Order: []channel.Dim{channel.X, channel.Y}, name: "xy"} }

// NewYX returns 2D YX routing.
func NewYX() *DOR { return &DOR{Order: []channel.Dim{channel.Y, channel.X}, name: "yx"} }

// NewDOR returns dimension-order routing over the given dimension order.
func NewDOR(name string, order ...channel.Dim) *DOR { return &DOR{Order: order, name: name} }

// Name implements Algorithm.
func (a *DOR) Name() string {
	if a.name == "" {
		return "dor"
	}
	return a.name
}

// Candidates implements Algorithm.
func (a *DOR) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	offs := net.MinimalOffsets(cur, dst)
	order := a.Order
	if len(order) == 0 {
		order = make([]channel.Dim, net.Dims())
		for d := range order {
			order[d] = channel.Dim(d)
		}
	}
	vc := a.VC
	if vc == 0 {
		vc = 1
	}
	for _, d := range order {
		if offs[d] == 0 {
			continue
		}
		sign := channel.Plus
		if offs[d] < 0 {
			sign = channel.Minus
		}
		return []channel.Class{channel.NewVC(d, sign, vc)}
	}
	return nil
}

// TurnModel2D is a rule-based 2D partially adaptive algorithm in the
// classic priority formulation: the "first" directions must be exhausted
// before any other hop is taken, and the "last" direction may only be
// taken when it is the sole remaining one. This is how West-First,
// North-Last and Negative-First are implemented in practice — a pure
// prohibited-turn filter would offer hops that dead-end.
type TurnModel2D struct {
	name string
	// first reports directions that take priority over everything else.
	first func(channel.Class) bool
	// last reports the direction that may only be taken when alone.
	last func(channel.Class) bool
}

// NewWestFirst returns the West-First turn model: all west (X-) hops are
// taken first; afterwards routing among E/N/S is fully adaptive.
func NewWestFirst() *TurnModel2D {
	return &TurnModel2D{name: "west-first",
		first: func(c channel.Class) bool { return c.Dim == channel.X && c.Sign == channel.Minus }}
}

// NewNorthLast returns the North-Last turn model: north (Y+) hops are taken
// only when no other productive direction remains; routing among E/W/S is
// fully adaptive.
func NewNorthLast() *TurnModel2D {
	return &TurnModel2D{name: "north-last",
		last: func(c channel.Class) bool { return c.Dim == channel.Y && c.Sign == channel.Plus }}
}

// NewNegativeFirst returns the Negative-First turn model: all negative
// hops (W and S) are taken first, adaptively; then the positive hops,
// adaptively.
func NewNegativeFirst() *TurnModel2D {
	return &TurnModel2D{name: "negative-first",
		first: func(c channel.Class) bool { return c.Sign == channel.Minus }}
}

// Name implements Algorithm.
func (a *TurnModel2D) Name() string { return a.name }

// Candidates implements Algorithm.
func (a *TurnModel2D) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	dirs := productiveDirs(net, cur, dst)
	if a.first != nil {
		var priority []channel.Class
		for _, d := range dirs {
			if a.first(d) {
				priority = append(priority, d)
			}
		}
		if len(priority) > 0 {
			return priority
		}
		return dirs
	}
	if a.last != nil {
		var rest []channel.Class
		for _, d := range dirs {
			if !a.last(d) {
				rest = append(rest, d)
			}
		}
		if len(rest) > 0 {
			return rest
		}
		return dirs
	}
	return dirs
}

// OddEven is Chiu's Odd-Even turn model, implemented with the conditions
// of the original ROUTE function (which avoid the dead ends a naive
// prohibited-turn filter would create):
//
//   - eastbound with a row offset: N/S may be taken at odd columns, or
//     when the packet did not arrive on an eastbound channel (injection or
//     arrival on a Y channel); E may be taken unless it would enter an
//     even destination column that still needs a row correction;
//   - westbound: W is always available; N/S only at even columns.
type OddEven struct{}

// NewOddEven returns the Odd-Even baseline.
func NewOddEven() *OddEven { return &OddEven{} }

// Name implements Algorithm.
func (a *OddEven) Name() string { return "odd-even" }

// Candidates implements Algorithm.
func (a *OddEven) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	c, d := net.Coord(cur), net.Coord(dst)
	dx := d[channel.X] - c[channel.X]
	dy := d[channel.Y] - c[channel.Y]
	ySign := channel.Plus
	if dy < 0 {
		ySign = channel.Minus
	}
	yHop := channel.New(channel.Y, ySign)
	var out []channel.Class
	switch {
	case dx == 0 && dy == 0:
		return nil
	case dx == 0:
		out = append(out, yHop)
	case dx > 0: // eastbound
		if dy == 0 {
			out = append(out, channel.New(channel.X, channel.Plus))
			break
		}
		odd := c[channel.X]%2 != 0
		arrivedEast := in != nil && in.Dim == channel.X && in.Sign == channel.Plus
		if odd || !arrivedEast {
			out = append(out, yHop)
		}
		if d[channel.X]%2 != 0 || dx != 1 {
			out = append(out, channel.New(channel.X, channel.Plus))
		}
	default: // westbound
		out = append(out, channel.New(channel.X, channel.Minus))
		if dy != 0 && c[channel.X]%2 == 0 {
			out = append(out, yHop)
		}
	}
	return out
}

// Unrestricted is minimal fully adaptive routing with NO deadlock
// avoidance: every productive direction on VC 1 is always a candidate.
// Its channel dependency graph is cyclic and the simulator's watchdog
// catches it deadlocking under load — the adversarial contrast case for
// the EbDa designs.
type Unrestricted struct{}

// NewUnrestricted returns the deadlock-capable adversarial baseline.
func NewUnrestricted() *Unrestricted { return &Unrestricted{} }

// Name implements Algorithm.
func (a *Unrestricted) Name() string { return "unrestricted" }

// Candidates implements Algorithm.
func (a *Unrestricted) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	return productiveDirs(net, cur, dst)
}

// TargetFn computes the node a packet should currently steer toward; it
// lets chain-derived algorithms route via waypoints (e.g. elevators in
// partially connected networks). The default steers directly to the
// destination.
type TargetFn func(net *topology.Network, cur, dst topology.NodeID) topology.NodeID

// FromChain derives a routing algorithm from an EbDa partition chain: a
// packet may request every productive output channel whose class the
// chain's turn relation lets it take after the class it holds.
type FromChain struct {
	name  string
	chain *core.Chain
	turns *core.TurnSet
	vcs   []int
	// classes caches the turn set's class list.
	classes []channel.Class
	// target, when non-nil, redirects productivity toward a waypoint.
	target TargetFn
	// reachMemo caches final canReach results under mu; Candidates is
	// safe for concurrent use (parallel CDG extraction and concurrent
	// simulator seeds share one FromChain).
	mu        sync.RWMutex
	reachMemo map[reachKey]bool
}

type reachKey struct {
	node topology.NodeID
	cls  channel.Class
	dst  topology.NodeID
}

// NewFromChain builds the algorithm for a chain under the default turn
// options (Theorems 1-3 with U/I turns). The VC configuration is derived
// from the chain's channels.
func NewFromChain(name string, chain *core.Chain, dims int) *FromChain {
	ts := chain.AllTurns()
	vcs := make([]int, dims)
	for i := range vcs {
		vcs[i] = 1
	}
	for _, c := range chain.Channels() {
		if int(c.Dim) < dims && c.VC > vcs[c.Dim] {
			vcs[c.Dim] = c.VC
		}
	}
	return &FromChain{
		name: name, chain: chain, turns: ts, vcs: vcs,
		classes:   ts.Classes(),
		reachMemo: make(map[reachKey]bool),
	}
}

// NewFromChainWithTarget is NewFromChain with a waypoint function (see
// TargetFn).
func NewFromChainWithTarget(name string, chain *core.Chain, dims int, target TargetFn) *FromChain {
	a := NewFromChain(name, chain, dims)
	a.target = target
	return a
}

// Name implements Algorithm.
func (a *FromChain) Name() string { return a.name }

// Chain returns the underlying partition chain.
func (a *FromChain) Chain() *core.Chain { return a.chain }

// Turns returns the extracted turn relation.
func (a *FromChain) Turns() *core.TurnSet { return a.turns }

// VCs returns the per-dimension VC counts the design uses.
func (a *FromChain) VCs() []int { return a.vcs }

// matchAt returns the design classes a concrete channel instantiates when
// its tail is at the given coordinate.
func (a *FromChain) matchAt(coord topology.Coord, d channel.Dim, sign channel.Sign, vc int) []channel.Class {
	var out []channel.Class
	for _, cls := range a.classes {
		if cls.Dim != d || cls.Sign != sign || cls.VC != vc {
			continue
		}
		if cls.Par != channel.Any && !cls.Par.Matches(coord[cls.PDim]) {
			continue
		}
		out = append(out, cls)
	}
	return out
}

// Candidates implements Algorithm.
func (a *FromChain) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	curCoord := net.Coord(cur)
	// Reconstruct the abstract classes of the input channel. The input
	// channel's tail is one hop back along its own dimension; parity
	// dimensions are orthogonal, so cur's coordinates are valid there.
	var inClasses []channel.Class
	if in != nil {
		inClasses = a.matchAt(curCoord, in.Dim, in.Sign, in.VC)
	}
	steer := dst
	if a.target != nil {
		steer = a.target(net, cur, dst)
	}
	var out []channel.Class
	for _, dir := range productiveDirs(net, cur, steer) {
		next, _, ok := net.Neighbor(cur, dir.Dim, dir.Sign)
		if !ok {
			continue
		}
		for vc := 1; vc <= a.vcs[dir.Dim]; vc++ {
			viable := false
			for _, oc := range a.matchAt(curCoord, dir.Dim, dir.Sign, vc) {
				allowed := in == nil
				if !allowed {
					for _, ic := range inClasses {
						if a.turns.Allows(ic, oc) {
							allowed = true
							break
						}
					}
				}
				// Reject hops that strand the packet: from the new
				// class state the destination must stay reachable.
				if allowed && a.canReach(net, next, oc, dst) {
					viable = true
					break
				}
			}
			if viable {
				out = append(out, dir.WithVC(vc))
			}
		}
	}
	return out
}

// canReach reports whether a packet at node holding abstract class cls can
// still reach dst taking productive hops the turn relation permits.
// Final results are memoised under the lock; the conservative in-progress
// guard that treats re-entered states as unreachable (productive hops
// cannot revisit a state, so it never fires on well-formed targets) stays
// local to one recursion so concurrent callers never observe a transient
// value as an answer.
func (a *FromChain) canReach(net *topology.Network, node topology.NodeID, cls channel.Class, dst topology.NodeID) bool {
	if node == dst {
		return true
	}
	key := reachKey{node: node, cls: cls, dst: dst}
	a.mu.RLock()
	v, ok := a.reachMemo[key]
	a.mu.RUnlock()
	if ok {
		return v
	}
	return a.canReachRec(net, node, cls, dst, map[reachKey]bool{})
}

func (a *FromChain) canReachRec(net *topology.Network, node topology.NodeID, cls channel.Class, dst topology.NodeID, visiting map[reachKey]bool) bool {
	if node == dst {
		return true
	}
	key := reachKey{node: node, cls: cls, dst: dst}
	a.mu.RLock()
	v, ok := a.reachMemo[key]
	a.mu.RUnlock()
	if ok {
		return v
	}
	if visiting[key] {
		return false
	}
	visiting[key] = true
	steer := dst
	if a.target != nil {
		steer = a.target(net, node, dst)
	}
	coord := net.Coord(node)
	result := false
loop:
	for _, dir := range productiveDirs(net, node, steer) {
		next, _, ok := net.Neighbor(node, dir.Dim, dir.Sign)
		if !ok {
			continue
		}
		for vc := 1; vc <= a.vcs[dir.Dim]; vc++ {
			for _, oc := range a.matchAt(coord, dir.Dim, dir.Sign, vc) {
				if !a.turns.Allows(cls, oc) {
					continue
				}
				if a.canReachRec(net, next, oc, dst, visiting) {
					result = true
					break loop
				}
			}
		}
	}
	delete(visiting, key)
	a.mu.Lock()
	a.reachMemo[key] = result
	a.mu.Unlock()
	return result
}

// String renders the algorithm for diagnostics.
func (a *FromChain) String() string {
	return fmt.Sprintf("%s: %s", a.name, a.chain.PlainString())
}
