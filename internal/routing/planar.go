package routing

import (
	"ebda/internal/channel"
	"ebda/internal/topology"
)

// PlanarAdaptive is Chien & Kim's planar-adaptive routing (reference [2]
// of the paper): an n-dimensional packet routes adaptively within a
// sequence of 2D planes A0 = (d0, d1), A1 = (d1, d2), ..., moving to plane
// Ai+1 once the offset in di is corrected. Within plane Ai routing is
// fully adaptive; deadlock freedom comes from splitting di+1's virtual
// channels by the sign of the di offset (the same discipline as DyXY).
//
// Virtual-channel budget: the first dimension uses 1 VC, middle dimensions
// 3 (VC1/VC2 as the plane-second split, VC3 as the plane-first channel),
// and the last dimension 2 — e.g. 1,3,2 for 3D, totalling 12 channels
// against the 16 of the fully adaptive design.
type PlanarAdaptive struct{}

// NewPlanarAdaptive returns the planar-adaptive baseline.
func NewPlanarAdaptive() *PlanarAdaptive { return &PlanarAdaptive{} }

// Name implements Algorithm.
func (a *PlanarAdaptive) Name() string { return "planar-adaptive" }

// VCsPerDim returns the VC requirement: 1 for the first dimension, 3 for
// middle dimensions, 2 for the last (1,2 for 2D — where the scheme is
// exactly DyXY).
func (a *PlanarAdaptive) VCsPerDim(net *topology.Network) []int {
	n := net.Dims()
	out := make([]int, n)
	for d := 0; d < n; d++ {
		switch {
		case d == 0:
			out[d] = 1
		case d == n-1:
			out[d] = 2
		default:
			out[d] = 3
		}
	}
	return out
}

// leadVC is the VC a dimension uses when it is the first dimension of the
// active plane.
func leadVC(d int) int {
	if d == 0 {
		return 1
	}
	return 3
}

// Candidates implements Algorithm.
func (a *PlanarAdaptive) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	offs := net.MinimalOffsets(cur, dst)
	n := net.Dims()
	// Find the active plane: the first dimension with a remaining offset.
	f := -1
	for d := 0; d < n; d++ {
		if offs[d] != 0 {
			f = d
			break
		}
	}
	if f < 0 {
		return nil
	}
	sign := func(off int) channel.Sign {
		if off > 0 {
			return channel.Plus
		}
		return channel.Minus
	}
	var out []channel.Class
	if f == n-1 {
		// Only the last dimension remains. By convention the second VC
		// class carries it: packets may reach this phase having just
		// moved d_{n-2} in the negative direction (the later partition
		// of the final plane), from which only the second class is
		// reachable under the EbDa ordering — using it unconditionally
		// keeps the rule-based relation a sub-relation of
		// paper.PlanarAdaptiveChain.
		out = append(out, channel.NewVC(channel.Dim(f), sign(offs[f]), 2))
		return out
	}
	// Plane (f, f+1): adaptive between both dimensions. The second
	// dimension's VC is selected by the sign of the first's offset.
	out = append(out, channel.NewVC(channel.Dim(f), sign(offs[f]), leadVC(f)))
	if offs[f+1] != 0 {
		vc := 1
		if offs[f] < 0 {
			vc = 2
		}
		out = append(out, channel.NewVC(channel.Dim(f+1), sign(offs[f+1]), vc))
	}
	return out
}
