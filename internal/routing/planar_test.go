package routing

import (
	"math/rand"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/paper"
	"ebda/internal/topology"
)

func TestPlanarAdaptiveVerifiesAndDelivers3D(t *testing.T) {
	net := topology.NewMesh(4, 4, 4)
	alg := NewPlanarAdaptive()
	vcs := cdg.VCConfig(alg.VCsPerDim(net))
	if vcs[0] != 1 || vcs[1] != 3 || vcs[2] != 2 {
		t.Fatalf("VCs = %v, want 1,3,2", vcs)
	}
	rep := Verify(net, vcs, alg)
	if !rep.Acyclic {
		t.Fatalf("planar-adaptive: %s", rep)
	}
	del := CheckDelivery(net, alg, 64)
	if !del.OK() {
		t.Errorf("planar-adaptive: %s", del)
	}
}

func TestPlanarAdaptive2DIsDyXYShaped(t *testing.T) {
	net := topology.NewMesh(5, 5)
	alg := NewPlanarAdaptive()
	vcs := cdg.VCConfig(alg.VCsPerDim(net))
	if vcs[0] != 1 || vcs[1] != 2 {
		t.Fatalf("2D VCs = %v, want 1,2", vcs)
	}
	rep := Verify(net, vcs, alg)
	if !rep.Acyclic {
		t.Fatalf("2D planar: %s", rep)
	}
	if del := CheckDelivery(net, alg, 64); !del.OK() {
		t.Errorf("2D planar: %s", del)
	}
}

func TestPlanarAdaptive4D(t *testing.T) {
	net := topology.NewMesh(3, 3, 3, 3)
	alg := NewPlanarAdaptive()
	vcs := cdg.VCConfig(alg.VCsPerDim(net))
	if vcs[1] != 3 || vcs[2] != 3 || vcs[3] != 2 {
		t.Fatalf("4D VCs = %v", vcs)
	}
	rep := Verify(net, vcs, alg)
	if !rep.Acyclic {
		t.Fatalf("4D planar: %s", rep)
	}
	if del := CheckDelivery(net, alg, 96); !del.OK() {
		t.Errorf("4D planar: %s", del)
	}
}

func TestPlanarAdaptiveChainCoversRuleBasedWalks(t *testing.T) {
	// The EbDa chain expressing planar-adaptive routing must admit every
	// turn the rule-based algorithm takes (random adaptive walks), and
	// itself verify acyclic.
	net := topology.NewMesh(4, 4, 4)
	chain, err := paper.PlanarAdaptiveChain(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(chain.Channels()); got != 12 {
		t.Fatalf("chain channels = %d, want 12", got)
	}
	rep := cdg.VerifyChain(net, chain)
	if !rep.Acyclic {
		t.Fatalf("planar chain: %s", rep)
	}
	ts := chain.AllTurns()
	alg := NewPlanarAdaptive()
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		src := topology.NodeID(r.Intn(net.Nodes()))
		dst := topology.NodeID(r.Intn(net.Nodes()))
		if src == dst {
			continue
		}
		cur := src
		var in *channel.Class
		for cur != dst {
			cands := alg.Candidates(net, cur, in, dst)
			if len(cands) == 0 {
				t.Fatalf("planar stuck at n%d toward n%d", cur, dst)
			}
			c := cands[r.Intn(len(cands))]
			if in != nil && !ts.Allows(*in, c) {
				t.Fatalf("rule-based turn %s -> %s not admitted by the chain", in, c)
			}
			next, _, ok := net.Neighbor(cur, c.Dim, c.Sign)
			if !ok {
				t.Fatalf("missing link for %v at n%d", c, cur)
			}
			cur = next
			cls := c
			in = &cls
		}
	}
}

func TestPlanarAdaptivenessOrdering(t *testing.T) {
	// Adaptiveness on a 3x3x3 mesh: XYZ (deterministic) < planar chain <
	// fully adaptive 16-channel design.
	net := topology.NewMesh(3, 3, 3)
	chain, err := paper.PlanarAdaptiveChain(3)
	if err != nil {
		t.Fatal(err)
	}
	planar, err := cdg.Adaptiveness(net, cdg.VCConfigFor(3, chain.Channels()), chain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	full, err := cdg.Adaptiveness(net, cdg.VCConfigFor(3, paper.Figure9B().Channels()), paper.Figure9B().AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	if !(planar.Degree() < full.Degree()) {
		t.Errorf("planar %.4f should be below fully adaptive %.4f", planar.Degree(), full.Degree())
	}
	if planar.BrokenPairs != 0 {
		t.Errorf("planar chain broke %d pairs", planar.BrokenPairs)
	}
	if planar.Degree() < 0.3 {
		t.Errorf("planar adaptiveness %.4f suspiciously low", planar.Degree())
	}
	t.Logf("adaptiveness: planar %.4f (12 channels) vs fully adaptive %.4f (16 channels)",
		planar.Degree(), full.Degree())
}
