package routing

import (
	"sync"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// FaultTolerant derives a fault-tolerant routing algorithm from an EbDa
// partition chain, realising the paper's note to Theorem 2: the ordered
// U- and I-turns the theory admits exist precisely so that packets can be
// rerouted around faults without risking deadlock.
//
// Unlike FromChain, candidates are not restricted to minimal hops: any
// outgoing channel is offered whose class the turn relation permits after
// the packet's current class and from whose state the destination remains
// reachable on the (possibly faulty) network. Two properties follow
// directly from the theory:
//
//   - deadlock freedom: the offered turns are a subset of the chain's
//     acyclic relation;
//   - livelock freedom: the concrete channel dependency graph is acyclic,
//     so every hop moves the packet to a strictly later channel in a fixed
//     topological order — any walk is bounded by the channel count, no
//     matter how adversarially the adaptive choices fall.
type FaultTolerant struct {
	name    string
	chain   *core.Chain
	turns   *core.TurnSet
	vcs     []int
	classes []channel.Class
	// reach caches, per destination, which (node, class) states can
	// still reach it; states are indexed node*len(classes)+classIdx.
	// Each entry is computed exactly once under its sync.Once, so
	// Candidates is safe for concurrent use.
	reach     [][]bool
	reachOnce []sync.Once
	// net is the (faulty) network the reachability cache was built for.
	net *topology.Network
}

// NewFaultTolerant builds the fault-tolerant algorithm for a chain on a
// specific network instance (the network identity matters because the
// reachability analysis must see the same faults the router sees).
func NewFaultTolerant(name string, chain *core.Chain, net *topology.Network) *FaultTolerant {
	ts := chain.AllTurns()
	vcs := make([]int, net.Dims())
	for i := range vcs {
		vcs[i] = 1
	}
	for _, c := range chain.Channels() {
		if int(c.Dim) < len(vcs) && c.VC > vcs[c.Dim] {
			vcs[c.Dim] = c.VC
		}
	}
	return &FaultTolerant{
		name: name, chain: chain, turns: ts, vcs: vcs,
		classes:   ts.Classes(),
		reach:     make([][]bool, net.Nodes()),
		reachOnce: make([]sync.Once, net.Nodes()),
		net:       net,
	}
}

// Name implements Algorithm.
func (a *FaultTolerant) Name() string { return a.name }

// Chain returns the underlying design.
func (a *FaultTolerant) Chain() *core.Chain { return a.chain }

// VCs returns the per-dimension VC counts.
func (a *FaultTolerant) VCs() []int { return a.vcs }

// classIdx returns the index of a class in the design, or -1.
func (a *FaultTolerant) classIdx(c channel.Class) int {
	for i, cls := range a.classes {
		if cls == c {
			return i
		}
	}
	return -1
}

// matchAt returns the design classes a hop from coord along (d, sign, vc)
// instantiates.
func (a *FaultTolerant) matchAt(coord topology.Coord, d channel.Dim, sign channel.Sign, vc int) []channel.Class {
	var out []channel.Class
	for _, cls := range a.classes {
		if cls.Dim != d || cls.Sign != sign || cls.VC != vc {
			continue
		}
		if cls.Par != channel.Any && !cls.Par.Matches(coord[cls.PDim]) {
			continue
		}
		out = append(out, cls)
	}
	return out
}

// reachSet returns (building lazily) the set of states that can reach dst:
// state (u, c) means "a packet at node u whose last hop instantiated
// class c". The computation is a backward BFS over the state graph, which
// is acyclic because the chain's dependency graph is.
func (a *FaultTolerant) reachSet(dst topology.NodeID) []bool {
	a.reachOnce[dst].Do(func() { a.reach[dst] = a.computeReach(dst) })
	return a.reach[dst]
}

func (a *FaultTolerant) computeReach(dst topology.NodeID) []bool {
	n := a.net.Nodes()
	k := len(a.classes)
	set := make([]bool, n*k)
	// Seed: every state located at the destination.
	for ci := 0; ci < k; ci++ {
		set[int(dst)*k+ci] = true
	}
	// State (u, c) reaches dst if some hop (u -> v) with class c' is
	// allowed after c and (v, c') reaches dst. With the modest state
	// counts involved (nodes x classes) a fixed-point sweep is simple
	// and converges quickly because the state graph is acyclic.
	changed := true
	for changed {
		changed = false
		for u := topology.NodeID(0); int(u) < n; u++ {
			coord := a.net.Coord(u)
			for ci := 0; ci < k; ci++ {
				if set[int(u)*k+ci] {
					continue
				}
				if a.stateCanStep(coord, u, a.classes[ci], set) {
					set[int(u)*k+ci] = true
					changed = true
				}
			}
		}
	}
	return set
}

// stateCanStep reports whether some permitted hop from (u, c) lands in a
// state already known to reach the destination.
func (a *FaultTolerant) stateCanStep(coord topology.Coord, u topology.NodeID, c channel.Class, set []bool) bool {
	k := len(a.classes)
	for d := 0; d < a.net.Dims(); d++ {
		for _, sign := range []channel.Sign{channel.Plus, channel.Minus} {
			v, _, ok := a.net.Neighbor(u, channel.Dim(d), sign)
			if !ok {
				continue
			}
			for vc := 1; vc <= a.vcs[d]; vc++ {
				for _, oc := range a.matchAt(coord, channel.Dim(d), sign, vc) {
					if !a.turns.Allows(c, oc) {
						continue
					}
					if set[int(v)*k+a.classIdx(oc)] {
						return true
					}
				}
			}
		}
	}
	return false
}

// Candidates implements Algorithm: all viable hops, productive ones first.
func (a *FaultTolerant) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	set := a.reachSet(dst)
	coord := net.Coord(cur)
	offs := net.MinimalOffsets(cur, dst)
	k := len(a.classes)
	var inClasses []channel.Class
	if in != nil {
		inClasses = a.matchAt(coord, in.Dim, in.Sign, in.VC)
	}
	var productive, detour []channel.Class
	for d := 0; d < net.Dims(); d++ {
		for _, sign := range []channel.Sign{channel.Plus, channel.Minus} {
			v, _, ok := net.Neighbor(cur, channel.Dim(d), sign)
			if !ok {
				continue
			}
			for vc := 1; vc <= a.vcs[d]; vc++ {
				viable := false
				for _, oc := range a.matchAt(coord, channel.Dim(d), sign, vc) {
					allowed := in == nil
					for _, ic := range inClasses {
						if a.turns.Allows(ic, oc) {
							allowed = true
							break
						}
					}
					if allowed && set[int(v)*k+a.classIdx(oc)] {
						viable = true
						break
					}
				}
				if !viable {
					continue
				}
				cand := channel.NewVC(channel.Dim(d), sign, vc)
				if off := offs[d]; off != 0 && (off > 0) == (sign == channel.Plus) {
					productive = append(productive, cand)
				} else {
					detour = append(detour, cand)
				}
			}
		}
	}
	return append(productive, detour...)
}
