package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

func TestXYDeterministic(t *testing.T) {
	net := topology.NewMesh(4, 4)
	alg := NewXY()
	src := net.ID(topology.Coord{0, 0})
	dst := net.ID(topology.Coord{2, 3})
	cands := alg.Candidates(net, src, nil, dst)
	if len(cands) != 1 || cands[0] != channel.New(channel.X, channel.Plus) {
		t.Errorf("XY first hop = %v, want X+", cands)
	}
	mid := net.ID(topology.Coord{2, 0})
	in := channel.New(channel.X, channel.Plus)
	cands = alg.Candidates(net, mid, &in, dst)
	if len(cands) != 1 || cands[0] != channel.New(channel.Y, channel.Plus) {
		t.Errorf("XY after X done = %v, want Y+", cands)
	}
}

func TestDORVariants(t *testing.T) {
	net := topology.NewMesh(4, 4)
	dst := net.ID(topology.Coord{2, 2})
	src := net.ID(topology.Coord{0, 0})
	if got := NewYX().Candidates(net, src, nil, dst); len(got) != 1 || got[0].Dim != channel.Y {
		t.Errorf("YX first hop = %v", got)
	}
	// Default order is ascending dims.
	d := &DOR{}
	if d.Name() != "dor" {
		t.Error("default name")
	}
	if got := d.Candidates(net, src, nil, dst); len(got) != 1 || got[0].Dim != channel.X {
		t.Errorf("default DOR first hop = %v", got)
	}
}

func TestTurnModelPriorities(t *testing.T) {
	net := topology.NewMesh(5, 5)
	wf := NewWestFirst()
	// Destination to the north-west: only W is offered until the X
	// offset is corrected.
	cur := net.ID(topology.Coord{2, 2})
	dst := net.ID(topology.Coord{0, 4})
	cands := wf.Candidates(net, cur, nil, dst)
	if len(cands) != 1 || cands[0].Dim != channel.X || cands[0].Sign != channel.Minus {
		t.Errorf("west-first toward NW = %v, want only W", cands)
	}
	// Destination to the north-east: adaptive between E and N.
	dst = net.ID(topology.Coord{4, 4})
	if got := len(wf.Candidates(net, cur, nil, dst)); got != 2 {
		t.Errorf("west-first toward NE offers %d dirs, want 2", got)
	}
	// North-last: N only when it is the sole remaining direction.
	nl := NewNorthLast()
	cands = nl.Candidates(net, cur, nil, dst)
	for _, c := range cands {
		if c.Dim == channel.Y && c.Sign == channel.Plus {
			t.Error("north-last offered N while E remains")
		}
	}
	dst = net.ID(topology.Coord{2, 4})
	cands = nl.Candidates(net, cur, nil, dst)
	if len(cands) != 1 || cands[0].Dim != channel.Y {
		t.Errorf("north-last pure north = %v", cands)
	}
	// Negative-first: negatives before positives.
	nf := NewNegativeFirst()
	dst = net.ID(topology.Coord{4, 0})
	cands = nf.Candidates(net, cur, nil, dst)
	if len(cands) != 1 || cands[0].Sign != channel.Minus {
		t.Errorf("negative-first toward SE = %v, want only S", cands)
	}
}

func TestBaselinesVerifyAcyclicAndDeliver(t *testing.T) {
	net := topology.NewMesh(5, 5)
	algs := []Algorithm{NewXY(), NewYX(), NewWestFirst(), NewNorthLast(), NewNegativeFirst(), NewOddEven()}
	for _, alg := range algs {
		rep := Verify(net, nil, alg)
		if !rep.Acyclic {
			t.Errorf("%s: %s", alg.Name(), rep)
		}
		del := CheckDelivery(net, alg, 64)
		if !del.OK() {
			t.Errorf("%s: %s", alg.Name(), del)
		}
	}
}

// crossCheckWalks drives random adaptive walks under `driver` and asserts
// that `other` offers a superset of useful progress at every reachable
// state: wherever the driver has candidates, the other algorithm must also
// have at least one, and the walk must deliver. This compares algorithms
// over reachable states only (unreachable (in, dst) combinations are
// allowed to disagree).
func crossCheckWalks(t *testing.T, net *topology.Network, driver, other Algorithm, walks int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for w := 0; w < walks; w++ {
		src := topology.NodeID(r.Intn(net.Nodes()))
		dst := topology.NodeID(r.Intn(net.Nodes()))
		if src == dst {
			continue
		}
		cur := src
		var in *channel.Class
		for hops := 0; hops < 4*net.Nodes(); hops++ {
			if cur == dst {
				break
			}
			cands := driver.Candidates(net, cur, in, dst)
			if len(cands) == 0 {
				t.Fatalf("%s: no candidates at n%d (in=%v, dst=n%d)", driver.Name(), cur, in, dst)
			}
			if len(other.Candidates(net, cur, in, dst)) == 0 {
				t.Fatalf("%s offers nothing where %s progresses (n%d in=%v dst=n%d)",
					other.Name(), driver.Name(), cur, in, dst)
			}
			c := cands[r.Intn(len(cands))]
			next, _, ok := net.Neighbor(cur, c.Dim, c.Sign)
			if !ok {
				t.Fatalf("%s: candidate %v has no link at n%d", driver.Name(), c, cur)
			}
			cur = next
			cls := channel.NewVC(c.Dim, c.Sign, c.VC)
			in = &cls
		}
		if cur != dst {
			t.Fatalf("%s: walk n%d -> n%d did not terminate", driver.Name(), src, dst)
		}
	}
}

func TestFromChainWestFirstCrossCheck(t *testing.T) {
	// The chain PA[X-] -> PB[X+ Y+ Y-] and the rule-based west-first
	// baseline must each be able to progress wherever the other does,
	// across random adaptive walks (reachable states).
	net := topology.NewMesh(5, 5)
	chainAlg := NewFromChain("wf-chain", core.MustParseChain("PA[X-] -> PB[X+ Y+ Y-]"), 2)
	ruleAlg := NewWestFirst()
	crossCheckWalks(t, net, chainAlg, ruleAlg, 300, 1)
	crossCheckWalks(t, net, ruleAlg, chainAlg, 300, 2)
}

func TestFromChainOddEvenCrossCheck(t *testing.T) {
	net := topology.NewMesh(6, 6)
	pa := core.MustPartition("PA",
		channel.New(channel.X, channel.Minus),
		channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Even),
		channel.NewParity(channel.Y, channel.Minus, channel.X, channel.Even),
	)
	pb := core.MustPartition("PB",
		channel.New(channel.X, channel.Plus),
		channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Odd),
		channel.NewParity(channel.Y, channel.Minus, channel.X, channel.Odd),
	)
	chainAlg := NewFromChain("oe-chain", core.MustChain(pa, pb), 2)
	ruleAlg := NewOddEven()
	crossCheckWalks(t, net, chainAlg, chainAlg, 300, 3)
	crossCheckWalks(t, net, ruleAlg, ruleAlg, 300, 4)
	// Every turn the rule-based algorithm takes must be admitted by the
	// chain's turn relation (the chain covers Odd-Even).
	ts := chainAlg.Turns()
	r := rand.New(rand.NewSource(5))
	for w := 0; w < 300; w++ {
		src := topology.NodeID(r.Intn(net.Nodes()))
		dst := topology.NodeID(r.Intn(net.Nodes()))
		if src == dst {
			continue
		}
		cur := src
		var in *channel.Class
		for cur != dst {
			cands := ruleAlg.Candidates(net, cur, in, dst)
			if len(cands) == 0 {
				t.Fatalf("odd-even stuck at n%d dst=n%d", cur, dst)
			}
			c := cands[r.Intn(len(cands))]
			if in != nil {
				// Map concrete channels to parity classes at cur.
				inCls := parityClassAt(net, cur, *in)
				outCls := parityClassAt(net, cur, c)
				if !ts.Allows(inCls, outCls) {
					t.Fatalf("rule-based turn %s -> %s at %v not admitted by chain",
						inCls, outCls, net.Coord(cur))
				}
			}
			next, _, _ := net.Neighbor(cur, c.Dim, c.Sign)
			cur = next
			cls := c
			in = &cls
		}
	}
}

// parityClassAt maps a concrete hop at a node to the Odd-Even abstract
// class (Y channels carry the column parity).
func parityClassAt(net *topology.Network, at topology.NodeID, c channel.Class) channel.Class {
	if c.Dim != channel.Y {
		return channel.New(c.Dim, c.Sign)
	}
	par := channel.Even
	if net.Coord(at)[channel.X]%2 != 0 {
		par = channel.Odd
	}
	return channel.NewParity(channel.Y, c.Sign, channel.X, par)
}

func TestFromChainVerifiesAndDelivers(t *testing.T) {
	net := topology.NewMesh(5, 5)
	for _, spec := range []string{
		"PA[X+ X- Y-] -> PB[Y+]",
		"PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]",
		"PA[X- Y-] -> PB[X+ Y+]",
	} {
		chain := core.MustParseChain(spec)
		alg := NewFromChain(spec, chain, 2)
		vcs := cdg.VCConfigFor(2, chain.Channels())
		rep := Verify(net, vcs, alg)
		if !rep.Acyclic {
			t.Errorf("%s: %s", spec, rep)
		}
		del := CheckDelivery(net, alg, 64)
		if !del.OK() {
			t.Errorf("%s: %s", spec, del)
		}
	}
}

func TestDatelineTorus(t *testing.T) {
	tor := topology.NewTorus(4, 4)
	alg := NewDatelineTorus()
	rep := Verify(tor, cdg.VCConfig(alg.VCsPerDim(tor)), alg)
	if !rep.Acyclic {
		t.Fatalf("dateline torus: %s", rep)
	}
	del := CheckDelivery(tor, alg, 64)
	if !del.OK() {
		t.Errorf("dateline torus: %s", del)
	}
}

func TestDatelineTorusLarger(t *testing.T) {
	tor := topology.NewTorus(5, 3)
	alg := NewDatelineTorus()
	rep := Verify(tor, cdg.VCConfig(alg.VCsPerDim(tor)), alg)
	if !rep.Acyclic {
		t.Fatalf("dateline torus 5x3: %s", rep)
	}
	if del := CheckDelivery(tor, alg, 64); !del.OK() {
		t.Errorf("dateline torus 5x3: %s", del)
	}
}

func TestPlainDORTorusIsCyclic(t *testing.T) {
	// Without the dateline discipline, DOR on a torus has ring cycles —
	// the contrast case. (Odd radix: packets that cross the wraparound
	// and keep going exist for k = 5, closing the ring.)
	tor := topology.NewTorus(5, 5)
	rep := Verify(tor, nil, NewXY())
	if rep.Acyclic {
		t.Fatal("plain XY on a torus must be cyclic")
	}
}

func TestDatelineVCSelection(t *testing.T) {
	tor := topology.NewTorus(8, 8)
	alg := NewDatelineTorus()
	// 6 -> 1 going +X wraps: at 6 the remaining path crosses => VC1.
	src := tor.ID(topology.Coord{6, 0})
	dst := tor.ID(topology.Coord{1, 0})
	cands := alg.Candidates(tor, src, nil, dst)
	if len(cands) != 1 || cands[0].VC != 1 || cands[0].Sign != channel.Plus {
		t.Errorf("pre-dateline hop = %v, want X+ VC1", cands)
	}
	// After wrapping, at 0 -> 1: no crossing => VC2.
	src = tor.ID(topology.Coord{0, 0})
	cands = alg.Candidates(tor, src, nil, dst)
	if len(cands) != 1 || cands[0].VC != 2 {
		t.Errorf("post-dateline hop = %v, want VC2", cands)
	}
}

func TestElevatorFirst(t *testing.T) {
	net := topology.NewPartialMesh3D(4, 4, 3, [][2]int{{0, 0}, {3, 3}})
	alg := NewElevatorFirst(Elevators{{0, 0}, {3, 3}})
	rep := Verify(net, cdg.VCConfig(alg.VCsPerDim()), alg)
	if !rep.Acyclic {
		t.Fatalf("elevator-first: %s", rep)
	}
	del := CheckDelivery(net, alg, 64)
	if !del.OK() {
		t.Errorf("elevator-first: %s", del)
	}
}

func TestEbDaElevator(t *testing.T) {
	net := topology.NewPartialMesh3D(4, 4, 3, [][2]int{{0, 0}, {3, 3}})
	chain := core.MustParseChain("PA[X1+ Y1* Z1+] -> PB[X1- Y2* Z1-]")
	alg := NewEbDaElevator(chain, Elevators{{0, 0}, {3, 3}})
	vcs := cdg.VCConfigFor(3, chain.Channels())
	rep := Verify(net, vcs, alg)
	if !rep.Acyclic {
		t.Fatalf("ebda-elevator: %s", rep)
	}
	del := CheckDelivery(net, alg, 96)
	if !del.OK() {
		t.Errorf("ebda-elevator: %s", del)
	}
}

// inputsAt enumerates the possible input channels at a node (nil for
// injection plus one per incoming link direction).
func inputsAt(net *topology.Network, at topology.NodeID) []*channel.Class {
	out := []*channel.Class{nil}
	for d := 0; d < net.Dims(); d++ {
		for _, sign := range []channel.Sign{channel.Plus, channel.Minus} {
			// A packet arrives moving (d, sign) if the reverse link
			// exists from the neighbor.
			if _, _, ok := net.Neighbor(at, channel.Dim(d), sign.Opposite()); ok {
				c := channel.New(channel.Dim(d), sign)
				out = append(out, &c)
			}
		}
	}
	return out
}

func TestQuickFromChainCandidatesAreProductive(t *testing.T) {
	net := topology.NewMesh(5, 5)
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	alg := NewFromChain("dyxy", chain, 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := topology.NodeID(r.Intn(net.Nodes()))
		dst := topology.NodeID(r.Intn(net.Nodes()))
		if src == dst {
			return true
		}
		for _, in := range inputsAt(net, src) {
			offs := net.MinimalOffsets(src, dst)
			for _, c := range alg.Candidates(net, src, in, dst) {
				off := offs[c.Dim]
				if off == 0 || (off > 0) != (c.Sign == channel.Plus) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCheckDeliveryDetectsBrokenAlgorithm(t *testing.T) {
	// An algorithm that never routes in Y cannot deliver.
	net := topology.NewMesh(3, 3)
	broken := brokenAlg{}
	del := CheckDelivery(net, broken, 32)
	if del.OK() {
		t.Error("broken algorithm should fail delivery")
	}
}

type brokenAlg struct{}

func (brokenAlg) Name() string { return "broken" }
func (brokenAlg) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	for _, dir := range productiveDirs(net, cur, dst) {
		if dir.Dim == channel.X {
			return []channel.Class{dir}
		}
	}
	return nil
}
