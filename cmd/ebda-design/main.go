// Command ebda-design runs the Section-5 design methodology for a given
// channel budget: it derives the family of deadlock-free routing designs
// (Algorithm 1 over arrangements, Algorithm 2 reorderings, the no-VC
// exceptional case, the split ladder down to deterministic routing),
// verifies each on a mesh, and reports adaptiveness so a designer can pick
// an operating point.
//
// Usage examples:
//
//	ebda-design -vcs 1,1                 # the classic 2D four-channel space
//	ebda-design -vcs 1,2 -mesh 5x5       # the six-channel fully adaptive space
//	ebda-design -vcs 3,2,3 -mesh 3x3x3   # the paper's Section 5 example
//	ebda-design -n 3                     # minimum-channel fully adaptive design
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/cost"
	"ebda/internal/partstrat"
	"ebda/internal/synth"
	"ebda/internal/topology"
)

func main() {
	vcSpec := flag.String("vcs", "", "per-dimension VC counts, e.g. 1,2 or 3,2,3")
	minN := flag.Int("n", 0, "instead of -vcs: build the minimum-channel fully adaptive design for n dimensions")
	meshSpec := flag.String("mesh", "", "verification mesh (default 5x5 / 3x3x3 by dimension)")
	ladder := flag.Bool("ladder", false, "also print the split ladder (reduced-adaptiveness variants)")
	maxOptions := flag.Int("max", 24, "cap on printed options")
	costTable := flag.Bool("cost", false, "print the router resource-cost comparison table")
	pairings := flag.Bool("pairings", false, "include Arrangement-3 D-pair re-pairings of the leading set")
	flag.Parse()

	if *costTable {
		printCostTable()
		return
	}
	usePairings = *pairings

	switch {
	case *minN > 0:
		designMin(*minN, *meshSpec)
	case *vcSpec != "":
		explore(*vcSpec, *meshSpec, *ladder, *maxOptions)
	default:
		fmt.Fprintln(os.Stderr, "ebda-design: -vcs or -n required")
		os.Exit(2)
	}
}

func designMin(n int, meshSpec string) {
	chain, err := partstrat.MinFullyAdaptiveChain(n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("minimum-channel fully adaptive design for n=%d (%d channels, formula %d):\n",
		n, len(chain.Channels()), core.MinChannelsFullyAdaptive(n))
	for _, p := range chain.Partitions() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Printf("  VCs per dimension: %v\n", partstrat.VCRequirements(n))
	net := defaultMesh(n, meshSpec)
	report(net, chain, true)
}

func explore(vcSpec, meshSpec string, ladder bool, maxOptions int) {
	vcs, err := parseVCs(vcSpec)
	if err != nil {
		fatal(err)
	}
	net := defaultMesh(len(vcs), meshSpec)
	fmt.Printf("channel budget: %v VCs per dimension (%d channels), verifying on %s\n\n",
		vcs, 2*sum(vcs), net)

	// Algorithm 2 over the canonical arrangement (optionally across the
	// Arrangement-3 D-pair re-pairings of the leading set).
	arr := partstrat.ArrangementFor(vcs)
	var chains []*core.Chain
	if usePairings {
		chains, err = partstrat.DeriveWithPairings(arr)
	} else {
		chains, err = partstrat.Derive(arr)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Algorithm 1/2 options (%d):\n", len(chains))
	for i, c := range chains {
		if i >= maxOptions {
			fmt.Printf("  ... %d more\n", len(chains)-maxOptions)
			break
		}
		report(net, c, false)
	}

	// The exceptional no-VC case.
	if allOnes(vcs) {
		exc := partstrat.ExceptionalCase(len(vcs))
		fmt.Printf("\nexceptional-case options (%d):\n", len(exc))
		for i, c := range exc {
			if i >= maxOptions {
				break
			}
			report(net, c, false)
		}
	}

	if ladder && len(chains) > 0 {
		fmt.Println("\nsplit ladder of the first option (adaptiveness vs partition count):")
		base := chains[0]
		for _, c := range []*core.Chain{base, partstrat.SplitLast(base), partstrat.FullSplit(base)} {
			report(net, c, false)
		}
	}
}

func report(net *topology.Network, chain *core.Chain, detail bool) {
	vcs := cdg.VCConfigFor(net.Dims(), chain.Channels())
	rep := cdg.VerifyTurnSet(net, vcs, chain.AllTurns())
	status := "ACYCLIC"
	if !rep.Acyclic {
		status = "CYCLIC(!)"
	}
	ad, err := cdg.Adaptiveness(net, vcs, chain.AllTurns())
	adStr := "n/a"
	if err == nil {
		adStr = fmt.Sprintf("%.4f", ad.Degree())
		if ad.FullyAdaptive() {
			adStr += " (fully adaptive)"
		}
	}
	fmt.Printf("  %-52s %-9s adaptiveness %s\n", chain.PlainString(), status, adStr)
	if detail {
		n90, nU, nI := chain.AllTurns().Counts()
		fmt.Printf("    turns: %d 90-degree, %d U, %d I; %s\n", n90, nU, nI, rep)
	}
}

// usePairings toggles Arrangement-3 exploration (set from the flag).
var usePairings bool

// printCostTable renders the router resource comparison of the standard
// 2D designs (the Section 5.4 / resource-trade-off discussion).
func printCostTable() {
	net := topology.NewMesh(5, 5)
	rows := []struct {
		name, spec string
		vcs        []int
	}{
		{"xy", "PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]", []int{1, 1}},
		{"west-first", "PA[X-] -> PB[X+ Y+ Y-]", []int{1, 1}},
		{"north-last", "PA[X+ X- Y-] -> PB[Y+]", []int{1, 1}},
		{"negative-first", "PA[X- Y-] -> PB[X+ Y+]", []int{1, 1}},
		{"dyxy (6ch)", "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]", []int{1, 2}},
		{"fig7c (6ch)", "PA[X1+ X1- Y1+] -> PB[X2+ X2- Y1-]", []int{2, 1}},
	}
	var comps []cost.Comparison
	for _, r := range rows {
		chain := core.MustParseChain(r.spec)
		ad, err := cdg.Adaptiveness(net, cdg.VCConfig(r.vcs), chain.AllTurns())
		if err != nil {
			fatal(err)
		}
		router := cost.Estimate(r.vcs, cost.Params{})
		if logic, err := synth.Generate(r.name, chain, 2); err == nil {
			router.RoutingComparators = logic.Comparisons()
		}
		comps = append(comps, cost.Comparison{
			Name: r.name, VCs: r.vcs,
			Router:       router,
			Adaptiveness: ad.Degree(),
		})
	}
	fmt.Print(cost.Table(comps))
	fmt.Println("\nrouting-unit comparators (synthesized, Section 5.4):")
	for _, c := range comps {
		fmt.Printf("  %-16s %d\n", c.Name, c.Router.RoutingComparators)
	}
}

func defaultMesh(dims int, spec string) *topology.Network {
	if spec != "" {
		sizes, err := parseSizes(spec)
		if err != nil {
			fatal(err)
		}
		return topology.NewMesh(sizes...)
	}
	sizes := make([]int, dims)
	for i := range sizes {
		if dims <= 2 {
			sizes[i] = 5
		} else if dims == 3 {
			sizes[i] = 3
		} else {
			sizes[i] = 2
		}
	}
	return topology.NewMesh(sizes...)
}

func parseVCs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad VC count %q", p)
		}
		out[i] = v
	}
	if len(out) < 1 {
		return nil, fmt.Errorf("need at least one dimension")
	}
	return out, nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func allOnes(xs []int) bool {
	for _, x := range xs {
		if x != 1 {
			return false
		}
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebda-design:", err)
	os.Exit(2)
}
