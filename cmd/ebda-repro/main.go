// Command ebda-repro runs the full reproduction harness: every table,
// figure and section-level claim of the EbDa paper (experiments E01..E16)
// plus the extension experiments (X01..X07), printing paper-vs-measured
// for each.
//
// Usage:
//
//	ebda-repro [-quick] [-details] [-markdown|-json] [-only E06] [-jobs N] [-benchjson FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink simulation-based experiments")
	details := flag.Bool("details", false, "print per-experiment detail lines")
	only := flag.String("only", "", "run a single experiment by ID (e.g. E06)")
	markdown := flag.Bool("markdown", false, "emit a Markdown summary table (EXPERIMENTS.md style)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array")
	jobs := flag.Int("jobs", 0, "worker pool size for running experiments (0 = all cores)")
	benchJSON := flag.String("benchjson", "", "write a perf snapshot (wall time per experiment, CDG channels/sec) to this file, e.g. BENCH_verify.json")
	cacheStats := flag.Bool("cachestats", false, "print verification-cache hit/miss statistics after the run")
	flag.Parse()

	opts := experiments.Options{Quick: *quick}

	if *benchJSON != "" {
		if err := writeBench(*benchJSON, opts, *jobs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}

	var selected []experiments.Runner
	for _, r := range experiments.All() {
		if *only != "" && !strings.EqualFold(r.ID, *only) {
			continue
		}
		selected = append(selected, r)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q\n", *only)
		os.Exit(2)
	}

	// Experiments fan out over the pool; results come back in canonical
	// All() order, so every output mode prints deterministically.
	results := experiments.RunRunnersJobs(selected, opts, *jobs)

	failures := 0
	// The Markdown header is emitted lazily, once the first matching
	// result is about to print — never above an error exit.
	headerDone := false
	for _, res := range results {
		if !res.Match {
			failures++
		}
		switch {
		case *jsonOut:
			// Collected below; nothing to print per row.
		case *markdown:
			if !headerDone {
				fmt.Println("| ID | Artifact | Paper claim | Measured | Match |")
				fmt.Println("|---|---|---|---|---|")
				headerDone = true
			}
			mark := "✔"
			if !res.Match {
				mark = "✘"
			}
			fmt.Printf("| %s | %s | %s | %s | %s |\n",
				res.ID, res.Name, escapeMD(res.Paper), escapeMD(res.Measured), mark)
		default:
			fmt.Println(res)
			if *details {
				for _, d := range res.Details {
					fmt.Println("      " + d)
				}
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("\n%d experiments, %d mismatches\n", len(results), failures)
	if *cacheStats {
		printCacheStats()
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// printCacheStats reports the verification cache's effectiveness over the
// run: repeated turn-set verifications on identical network shapes are
// served from memory.
func printCacheStats() {
	s := cdg.DefaultCache.Stats()
	fmt.Printf("verify cache: %d hits, %d misses (%.1f%% hit rate), %d entries\n",
		s.Hits, s.Misses, 100*s.HitRate(), s.Entries)
}

// writeBench runs the perf harness and writes the JSON snapshot.
func writeBench(path string, opts experiments.Options, jobs int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	b := experiments.RunBench(opts, jobs)
	if err := b.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// escapeMD keeps table cells on one line and pipe-free.
func escapeMD(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}
