// Command ebda-repro runs the full reproduction harness: every table,
// figure and section-level claim of the EbDa paper (experiments E01..E16)
// plus the extension experiments (X01..X07), printing paper-vs-measured
// for each.
//
// Usage:
//
//	ebda-repro [-quick] [-details] [-markdown|-json] [-only E06]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ebda/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink simulation-based experiments")
	details := flag.Bool("details", false, "print per-experiment detail lines")
	only := flag.String("only", "", "run a single experiment by ID (e.g. E06)")
	markdown := flag.Bool("markdown", false, "emit a Markdown summary table (EXPERIMENTS.md style)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array")
	flag.Parse()

	opts := experiments.Options{Quick: *quick}
	failures := 0
	ran := 0
	var collected []experiments.Result
	if *markdown {
		fmt.Println("| ID | Artifact | Paper claim | Measured | Match |")
		fmt.Println("|---|---|---|---|---|")
	}
	for _, r := range experiments.All() {
		if *only != "" && !strings.EqualFold(r.ID, *only) {
			continue
		}
		res := r.Run(opts)
		res.ID, res.Name = r.ID, r.Name
		if *jsonOut {
			collected = append(collected, res)
			ran++
			if !res.Match {
				failures++
			}
			continue
		}
		if *markdown {
			mark := "✔"
			if !res.Match {
				mark = "✘"
			}
			fmt.Printf("| %s | %s | %s | %s | %s |\n",
				res.ID, res.Name, escapeMD(res.Paper), escapeMD(res.Measured), mark)
		} else {
			fmt.Println(res)
			if *details {
				for _, d := range res.Details {
					fmt.Println("      " + d)
				}
			}
		}
		ran++
		if !res.Match {
			failures++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q\n", *only)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("\n%d experiments, %d mismatches\n", ran, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// escapeMD keeps table cells on one line and pipe-free.
func escapeMD(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}
