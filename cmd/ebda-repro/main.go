// Command ebda-repro runs the full reproduction harness: every table,
// figure and section-level claim of the EbDa paper (experiments E01..E16)
// plus the extension experiments (X01..X07), printing paper-vs-measured
// for each.
//
// Usage:
//
//	ebda-repro [-quick] [-details] [-markdown|-json] [-only E06] [-jobs N] [-benchjson FILE]
//	ebda-repro -quick -obs :8080 -obs-json run.json -cachestats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ebda/internal/experiments"
	"ebda/internal/obs"
	"ebda/internal/obs/obshttp"
)

func main() {
	quick := flag.Bool("quick", false, "shrink simulation-based experiments")
	details := flag.Bool("details", false, "print per-experiment detail lines")
	only := flag.String("only", "", "run a single experiment by ID (e.g. E06)")
	markdown := flag.Bool("markdown", false, "emit a Markdown summary table (EXPERIMENTS.md style)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array")
	jobs := flag.Int("jobs", 0, "worker pool size for running experiments (0 = all cores)")
	benchJSON := flag.String("benchjson", "", "write a perf snapshot (wall time per experiment, CDG channels/sec) to this file, e.g. BENCH_verify.json")
	cacheStats := flag.Bool("cachestats", false, "print this run's verification-cache counter deltas after the run")
	obsAddr := flag.String("obs", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	obsJSON := flag.String("obs-json", "", "write the end-of-run metrics snapshot (JSON) to this file")
	flag.Parse()

	finishObs, err := obshttp.Setup(*obsAddr, *obsJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Snapshot before the run so -cachestats reports this invocation's
	// traffic alone, not process-lifetime totals.
	obsBefore := obs.Default.Snapshot()

	opts := experiments.Options{Quick: *quick}

	if *benchJSON != "" {
		if err := writeBench(*benchJSON, opts, *jobs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		if err := finishObs(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	var selected []experiments.Runner
	for _, r := range experiments.All() {
		if *only != "" && !strings.EqualFold(r.ID, *only) {
			continue
		}
		selected = append(selected, r)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q\n", *only)
		os.Exit(2)
	}

	// Experiments fan out over the pool; results come back in canonical
	// All() order, so every output mode prints deterministically.
	results := experiments.RunRunnersJobs(selected, opts, *jobs)

	failures := 0
	// The Markdown header is emitted lazily, once the first matching
	// result is about to print — never above an error exit.
	headerDone := false
	for _, res := range results {
		if !res.Match {
			failures++
		}
		switch {
		case *jsonOut:
			// Collected below; nothing to print per row.
		case *markdown:
			if !headerDone {
				fmt.Println("| ID | Artifact | Paper claim | Measured | Match |")
				fmt.Println("|---|---|---|---|---|")
				headerDone = true
			}
			mark := "✔"
			if !res.Match {
				mark = "✘"
			}
			fmt.Printf("| %s | %s | %s | %s | %s |\n",
				res.ID, res.Name, escapeMD(res.Paper), escapeMD(res.Measured), mark)
		default:
			fmt.Println(res)
			if *details {
				for _, d := range res.Details {
					fmt.Println("      " + d)
				}
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := finishObs(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("\n%d experiments, %d mismatches\n", len(results), failures)
	if *cacheStats {
		printCacheStats(obsBefore)
	}
	if err := finishObs(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// printCacheStats reports the verification cache's effectiveness over
// this run alone — counter deltas against the pre-run snapshot, rendered
// through the shared snapshot renderer — so repeated or long-lived
// invocations do not accumulate stale process-lifetime totals.
func printCacheStats(before obs.Snapshot) {
	delta := obs.Default.Snapshot().Sub(before).Filter("ebda_verify_cache")
	fmt.Println("verify cache (this run):")
	if err := delta.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	hits := delta.Counter("ebda_verify_cache_hits_total")
	misses := delta.Counter("ebda_verify_cache_misses_total")
	if hits+misses > 0 {
		fmt.Printf("  hit rate: %.1f%% (%d/%d)\n",
			float64(hits)/float64(hits+misses)*100, hits, hits+misses)
	}
}

// writeBench runs the perf harness and writes the JSON snapshot.
func writeBench(path string, opts experiments.Options, jobs int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	b := experiments.RunBench(opts, jobs)
	if err := b.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// escapeMD keeps table cells on one line and pipe-free.
func escapeMD(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}
