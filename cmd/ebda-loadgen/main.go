// Command ebda-loadgen drives ebda-serve with a deterministic seeded
// workload and writes the serving-layer perf snapshot
// (BENCH_serve.json: p50/p99 latency, throughput, coalesce rate, error
// counts) that ebda-benchdiff compares across commits.
//
// The workload mixes hot requests (a small set of repeated designs that
// exercise the verify cache), cold requests (fresh shapes that compute),
// batches, design-family requests, deliberately invalid bodies and —
// after one base verification pins its cache key — seeded single-link
// delta requests against /v1/verify/delta. A final burst phase fires
// identical concurrent requests at a fresh shape until at least one
// response reports coalesced provenance.
//
// With -addr empty the generator starts an in-process server (same code
// path as ebda-serve) on a loopback port, which also lets it probe the
// /readyz drain contract. With -smoke it asserts the serving invariants
// and exits 1 on any violation:
//
//   - zero 5xx responses (top-level and batch items)
//   - at least one coalesced verdict
//   - repeated identical requests return byte-identical verdicts
//     (provenance aside)
//   - every invalid request is rejected with a 4xx
//   - at least one incrementally computed delta verdict, and delta
//     verdicts byte-identical to from-scratch re-verifications of the
//     derived faulty networks
//
// Usage examples:
//
//	ebda-loadgen -smoke -out BENCH_serve.json
//	ebda-loadgen -addr 127.0.0.1:8423 -requests 2000 -conc 16
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/obs"
	"ebda/internal/obs/obshttp"
	"ebda/internal/obs/trace"
	"ebda/internal/serve"
	"ebda/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// genReq is one pre-generated request of the deterministic workload.
type genReq struct {
	path    string
	body    string
	invalid bool // expected to be rejected with a 4xx
}

// result is one completed request.
type result struct {
	status    int
	latencyMS float64
	// provenance tallies across the verdicts the response carried (a
	// batch or design response carries several).
	cache, computed, coalesced, delta int
	// peer and forwarded only appear in cluster mode (a non-owner
	// answered from the owner's cache, or proxied to it).
	peer, forwarded int
	item5xx         int
	invalid         bool
}

func run(argv []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ebda-loadgen", flag.ContinueOnError)
	fs.SetOutput(errw)
	addr := fs.String("addr", "", "target server (host:port); empty starts an in-process server")
	seed := fs.Uint64("seed", 1, "workload seed")
	requests := fs.Int("requests", 200, "requests in the main phase")
	conc := fs.Int("conc", 8, "concurrent client workers")
	outPath := fs.String("out", "BENCH_serve.json", "perf snapshot path (empty disables)")
	smoke := fs.Bool("smoke", false, "assert serving invariants; exit 1 on violation")
	burst := fs.Int("burst", 8, "width of the coalesce burst phase")
	workers := fs.Int("workers", 0, "in-process server: worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "in-process server: queue depth (0 = default)")
	timeout := fs.Duration("timeout", 0, "in-process server: per-request deadline (0 = default)")
	clusterMode := fs.Bool("cluster", false, "drive an in-process replica cluster through the shard ring (writes a cluster snapshot)")
	replicas := fs.Int("replicas", 4, "cluster mode: ring member count")
	designs := fs.Int("designs", 64, "cluster mode: distinct designs in the workload (balanced across replicas)")
	misroute := fs.Float64("misroute", 0.10, "cluster mode: fraction of requests sent to a non-owner")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *requests < 1 || *conc < 1 || *burst < 1 {
		fmt.Fprintln(errw, "ebda-loadgen: -requests, -conc and -burst must be positive")
		return 2
	}

	cfg := serve.Config{Workers: *workers, QueueDepth: *queue, Timeout: *timeout}
	if *clusterMode {
		if *addr != "" {
			fmt.Fprintln(errw, "ebda-loadgen: -cluster drives in-process replicas; -addr is incompatible")
			return 2
		}
		path := *outPath
		if path == "BENCH_serve.json" {
			// The untouched default names the single-server snapshot;
			// cluster runs get their own file.
			path = "BENCH_cluster.json"
		}
		// The single-server default of 200 requests is too small a
		// sample for the scaling gate: a handful of forwards landing on
		// one phase dominates its wall. Cluster runs default higher;
		// an explicit -requests still wins.
		reqs := *requests
		explicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "requests" {
				explicit = true
			}
		})
		if !explicit {
			reqs = 800
		}
		return runCluster(clusterParams{
			seed:     *seed,
			requests: reqs,
			conc:     *conc,
			replicas: *replicas,
			designs:  *designs,
			misroute: *misroute,
			outPath:  path,
			smoke:    *smoke,
			cfg:      cfg,
		}, out, errw)
	}
	base := *addr
	var local *serve.Server
	if base == "" {
		srv, bound, err := startLocal(cfg)
		if err != nil {
			fmt.Fprintln(errw, "ebda-loadgen:", err)
			return 2
		}
		local = srv
		base = bound
		fmt.Fprintf(errw, "ebda-loadgen: in-process server on %s\n", base)
	}
	baseURL := "http://" + base
	client := &http.Client{Timeout: 60 * time.Second}

	// Phase 0: one base verification pins the delta base's cache key, so
	// the mix's delta requests can assert it. An empty key (e.g. an old
	// server without the delta endpoint) degrades the mix to no deltas.
	baseKey, bkErr := fetchBaseKey(client, baseURL)
	if bkErr != nil {
		fmt.Fprintln(errw, "ebda-loadgen: base verify for delta key failed:", bkErr)
	}

	// Phase 1: the seeded mix, spread over conc workers.
	reqs := generate(*seed, *requests, baseKey)
	start := time.Now() //ebda:allow detlint the load generator measures wall latency by design
	results := make([]result, len(reqs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = doReq(client, baseURL, reqs[i])
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()

	// Phase 2: coalesce burst — identical concurrent requests at fresh
	// shapes until one response reports coalesced provenance. Fresh
	// sizes start above the cold range so every attempt misses the
	// cache.
	coalesceSeen := 0
	for sz := 63; sz >= 33 && coalesceSeen == 0; sz-- {
		// Largest admissible shapes first: their verifications run
		// longest, so the window in which a second request can join the
		// flight is widest.
		body := fmt.Sprintf(`{"network":{"kind":"mesh","sizes":[%d,%d]},"chain":"PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"}`, sz, sz)
		burstRes := make([]result, *burst)
		var bw sync.WaitGroup
		barrier := make(chan struct{})
		for b := 0; b < *burst; b++ {
			bw.Add(1)
			go func(b int) {
				defer bw.Done()
				<-barrier
				burstRes[b] = doReq(client, baseURL, genReq{path: "/v1/verify", body: body})
			}(b)
		}
		close(barrier)
		bw.Wait()
		for _, r := range burstRes {
			coalesceSeen += r.coalesced
			results = append(results, r)
		}
	}
	wall := time.Since(start).Seconds() //ebda:allow detlint the load generator measures wall latency by design

	// Phase 3: determinism — the identical request twice, sequentially;
	// the verdicts must be byte-identical once provenance (legitimately
	// cache vs computed) is cleared.
	deterministic, detErr := identicalVerdicts(client, baseURL)

	// Phase 3b: delta equivalence — single-link delta verdicts must be
	// byte-identical to from-scratch verifications of the derived faulty
	// networks, computed locally through the cached engine.
	deltaOK, deltaMsg := deltaEquivalence(client, baseURL, baseKey)

	// Phase 3c: trace evidence — the flight recorder at /debug/traces
	// captured the run, and the slowest captured trace's span tree
	// accounts for the latency it reports.
	traced, traceOK, traceMsg := traceEvidence(client, baseURL)

	// Phase 4 (in-process only): the drain contract. /readyz answers 200
	// while serving and 503 once shutdown begins.
	drainOK := true
	var drainMsg string
	if local != nil {
		drainOK, drainMsg = probeDrain(client, baseURL, local)
	}

	// Aggregate. The config is recorded with defaults resolved: the pool
	// size and queue depth the server actually ran with, never the
	// zero-sentinels of unset flags.
	resolved := cfg.Resolved()
	b := serve.Bench{
		Kind:        serve.BenchKind,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //ebda:allow detlint bench snapshots are stamped with real wall time by design
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Workers:     resolved.Workers,
		QueueDepth:  resolved.QueueDepth,
		Seed:        *seed,
		WallSeconds: wall,
		Traced:      traced,
	}
	latencies := make([]float64, 0, len(results))
	invalidBad := 0
	for _, r := range results {
		b.Requests++
		latencies = append(latencies, r.latencyMS)
		switch {
		case r.status >= 500:
			b.Status5xx++
		case r.status >= 400:
			b.Status4xx++
		case r.status >= 200 && r.status < 300:
			b.Status2xx++
		}
		b.Status5xx += r.item5xx
		b.Cache += r.cache
		b.Computed += r.computed
		b.Coalesced += r.coalesced
		b.Deltas += r.delta
		if r.invalid && (r.status < 400 || r.status >= 500) {
			invalidBad++
		}
	}
	if total := b.Cache + b.Computed + b.Coalesced + b.Deltas; total > 0 {
		b.CoalesceRate = float64(b.Coalesced) / float64(total)
	}
	if wall > 0 {
		b.ThroughputRPS = float64(b.Requests) / wall
	}
	b.P50Millis = serve.Quantile(latencies, 0.50)
	b.P99Millis = serve.Quantile(latencies, 0.99)

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(errw, "ebda-loadgen:", err)
			return 2
		}
		if err := b.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(errw, "ebda-loadgen:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(errw, "ebda-loadgen:", err)
			return 2
		}
		fmt.Fprintf(errw, "ebda-loadgen: snapshot written to %s\n", *outPath)
	}

	fmt.Fprintf(out, "requests %d  2xx %d  4xx %d  5xx %d\n", b.Requests, b.Status2xx, b.Status4xx, b.Status5xx)
	fmt.Fprintf(out, "verdicts: cache %d  computed %d  coalesced %d  delta %d (coalesce rate %.3f)\n",
		b.Cache, b.Computed, b.Coalesced, b.Deltas, b.CoalesceRate)
	fmt.Fprintf(out, "latency: p50 %.2fms  p99 %.2fms  throughput %.1f req/s  traced %d\n", b.P50Millis, b.P99Millis, b.ThroughputRPS, b.Traced)

	if *smoke {
		violations := 0
		fail := func(format string, args ...any) {
			violations++
			fmt.Fprintf(errw, "SMOKE FAIL: "+format+"\n", args...)
		}
		if b.Status5xx != 0 {
			fail("%d responses were 5xx, want 0", b.Status5xx)
		}
		if b.Coalesced < 1 {
			fail("no request coalesced onto an in-flight computation")
		}
		if !deterministic {
			fail("repeated identical requests returned different verdicts: %s", detErr)
		}
		if invalidBad != 0 {
			fail("%d invalid requests were not rejected with a 4xx", invalidBad)
		}
		if b.Deltas < 1 {
			fail("no delta verdict was computed incrementally")
		}
		if !deltaOK {
			fail("delta equivalence: %s", deltaMsg)
		}
		if local != nil && traced < 1 {
			fail("the flight recorder captured no traces")
		}
		if !traceOK {
			fail("trace evidence: %s", traceMsg)
		}
		if !drainOK {
			fail("drain contract: %s", drainMsg)
		}
		if violations > 0 {
			return 1
		}
		fmt.Fprintln(out, "smoke: all serving invariants hold")
	}
	return 0
}

// startLocal runs the ebda-serve pipeline in-process on a loopback port.
func startLocal(cfg serve.Config) (*serve.Server, string, error) {
	srv := serve.New(cfg)
	mux := obshttp.Mux(obs.Default, srv.Ready)
	srv.Register(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go http.Serve(ln, mux)
	return srv, ln.Addr().String(), nil
}

// hotBodies is the repeated-design set: small shapes the verify cache
// memoizes after first contact.
var hotBodies = []string{
	`{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`,
	`{"network":{"kind":"mesh","sizes":[6,6]},"chain":"PA[X-] -> PB[X+ Y+ Y-]"}`,
	`{"network":{"kind":"mesh","sizes":[5,5]},"chain":"PA[X- Y-] -> PB[X+ Y+]"}`,
	`{"network":{"kind":"torus","sizes":[6,6]},"chain":"PA[X+ Y+] -> PB[X- Y-]"}`,
	`{"network":{"kind":"mesh","sizes":[4,4]},"turns":"X+>Y+,X->Y+,X+>Y-,X->Y-"}`,
}

// invalidBodies are rejected by decode or validation; the server must
// answer each with a 4xx.
var invalidBodies = []string{
	`{"network":{"kind":"ring","sizes":[8,8]},"chain":"PA[X+]"}`,
	`{"network":{"kind":"mesh","sizes":[1,8]},"chain":"PA[X+]"}`,
	`{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[X+]","turns":"X+>Y+"}`,
	`{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[Q*]"}`,
	`{"network":{"kind":"mesh","sizes":[8,8]}}`,
	`not json at all`,
}

// coldChains parameterize the fresh-shape requests.
var coldChains = []string{
	"PA[X+ X- Y-] -> PB[Y+]",
	"PA[X-] -> PB[X+ Y+ Y-]",
	"PA[X- Y-] -> PB[X+ Y+]",
	"PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]",
}

// deltaBase is the design the delta requests perturb: hotBodies[0], the
// 8x8-mesh north-last chain.
const deltaBaseBody = `{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`

// generate builds the deterministic request mix for a seed: roughly 45%
// hot, a quarter cold, the rest split between batches, design families,
// single-link deltas (when a base key is pinned) and invalid bodies.
func generate(seed uint64, n int, baseKey string) []genReq {
	rng := rand.New(rand.NewSource(int64(seed)))
	reqs := make([]genReq, 0, n)
	for i := 0; i < n; i++ {
		switch p := rng.Intn(100); {
		case p < 45:
			reqs = append(reqs, genReq{path: "/v1/verify", body: hotBodies[rng.Intn(len(hotBodies))]})
		case p < 70:
			reqs = append(reqs, genReq{path: "/v1/verify", body: coldBody(rng)})
		case p < 80:
			body := deltaBody(rng, baseKey)
			if baseKey == "" {
				// No pinned base key (old server): fall back to a hot hit.
				reqs = append(reqs, genReq{path: "/v1/verify", body: hotBodies[rng.Intn(len(hotBodies))]})
				continue
			}
			reqs = append(reqs, genReq{path: "/v1/verify/delta", body: body})
		case p < 85:
			items := make([]string, 2+rng.Intn(3))
			for j := range items {
				if rng.Intn(2) == 0 {
					items[j] = hotBodies[rng.Intn(len(hotBodies))]
				} else {
					items[j] = coldBody(rng)
				}
			}
			reqs = append(reqs, genReq{path: "/v1/batch", body: `{"requests":[` + strings.Join(items, ",") + `]}`})
		case p < 90:
			vcs := []string{`[1,1]`, `[1,2]`, `[2,1]`}[rng.Intn(3)]
			reqs = append(reqs, genReq{path: "/v1/design", body: `{"vcs":` + vcs + `,"max":4}`})
		default:
			reqs = append(reqs, genReq{path: "/v1/verify", body: invalidBodies[rng.Intn(len(invalidBodies))], invalid: true})
		}
	}
	return reqs
}

// deltaBody draws one single-link removal against the pinned base: the
// source node stays off the mesh boundary so every direction names a
// real link. The rng draws happen even when baseKey is empty, keeping
// the request stream deterministic per seed across server versions.
func deltaBody(rng *rand.Rand, baseKey string) string {
	x, y := 1+rng.Intn(6), 1+rng.Intn(6)
	dir := []string{"X+", "X-", "Y+", "Y-"}[rng.Intn(4)]
	return fmt.Sprintf(`{"base":%s,"base_key":"%s","remove_links":[{"at":[%d,%d],"dir":"%s"}]}`,
		deltaBaseBody, baseKey, x, y, dir)
}

// coldBody draws a fresh-ish shape: sizes in [2,32] so the burst phase's
// [33,63] range never collides with it.
func coldBody(rng *rand.Rand) string {
	a, b := 2+rng.Intn(31), 2+rng.Intn(31)
	kind := "mesh"
	if rng.Intn(4) == 0 {
		kind = "torus"
	}
	chain := coldChains[rng.Intn(len(coldChains))]
	return fmt.Sprintf(`{"network":{"kind":"%s","sizes":[%d,%d]},"chain":"%s"}`, kind, a, b, chain)
}

// doReq posts one request and tallies its response.
func doReq(client *http.Client, baseURL string, r genReq) result {
	t0 := time.Now() //ebda:allow detlint the load generator measures wall latency by design
	resp, err := client.Post(baseURL+r.path, "application/json", strings.NewReader(r.body))
	if err != nil {
		// Transport failure counts as a 5xx: the server broke the
		// connection contract.
		return result{status: 599, invalid: r.invalid}
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	res := result{
		status:    resp.StatusCode,
		latencyMS: time.Since(t0).Seconds() * 1000, //ebda:allow detlint the load generator measures wall latency by design
		invalid:   r.invalid,
	}
	if resp.StatusCode != http.StatusOK {
		return res
	}
	switch r.path {
	case "/v1/verify":
		var v serve.VerifyResponse
		if json.Unmarshal(body, &v) == nil {
			res.tally(v.Provenance)
		}
	case "/v1/verify/delta":
		var d serve.DeltaResponse
		if json.Unmarshal(body, &d) == nil {
			res.tally(d.Provenance)
		}
	case "/v1/batch":
		var b serve.BatchResponse
		if json.Unmarshal(body, &b) == nil {
			for _, item := range b.Results {
				if item.OK != nil {
					res.tally(item.OK.Provenance)
				} else if item.Status >= 500 {
					res.item5xx++
				}
			}
		}
	case "/v1/design":
		var d serve.DesignResponse
		if json.Unmarshal(body, &d) == nil {
			for _, opt := range d.Options {
				res.tally(opt.Provenance)
			}
		}
	}
	return res
}

func (r *result) tally(provenance string) {
	switch provenance {
	case "cache":
		r.cache++
	case "computed":
		r.computed++
	case "coalesced":
		r.coalesced++
	case "delta":
		r.delta++
	case "peer":
		r.peer++
	case "forwarded":
		r.forwarded++
	}
}

// fetchBaseKey verifies the delta base design once and returns its cache
// key, pinning the identity the delta requests assert via base_key.
func fetchBaseKey(client *http.Client, baseURL string) (string, error) {
	resp, err := client.Post(baseURL+"/v1/verify", "application/json", strings.NewReader(deltaBaseBody))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	var v serve.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", err
	}
	if v.Key == "" {
		return "", fmt.Errorf("base verify returned no cache key")
	}
	return v.Key, nil
}

// deltaEquivalence posts a handful of fixed single-link deltas and
// compares each verdict byte-for-byte against a from-scratch cached
// verification of the derived faulty network, computed locally with the
// same engine the server embeds.
func deltaEquivalence(client *http.Client, baseURL, baseKey string) (bool, string) {
	if baseKey == "" {
		return false, "no base key pinned (base verify failed?)"
	}
	net := topology.NewMesh(8, 8)
	chain, err := core.ParseChain("PA[X+ X- Y-] -> PB[Y+]")
	if err != nil {
		return false, err.Error()
	}
	ts := chain.Turns(core.DefaultTurnOptions)
	vcs := cdg.VCConfigFor(net.Dims(), chain.Channels())
	checks := []struct {
		x, y int
		dir  string
		d    channel.Dim
		sign channel.Sign
	}{
		{2, 3, "X+", 0, channel.Plus},
		{5, 1, "Y-", 1, channel.Minus},
		{0, 0, "X+", 0, channel.Plus},
		{6, 6, "Y+", 1, channel.Plus},
	}
	for _, c := range checks {
		body := fmt.Sprintf(`{"base":%s,"base_key":"%s","remove_links":[{"at":[%d,%d],"dir":"%s"}]}`,
			deltaBaseBody, baseKey, c.x, c.y, c.dir)
		resp, err := client.Post(baseURL+"/v1/verify/delta", "application/json", strings.NewReader(body))
		if err != nil {
			return false, err.Error()
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Sprintf("link (%d,%d)%s: status %d: %s", c.x, c.y, c.dir, resp.StatusCode, raw)
		}
		var got serve.DeltaResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			return false, err.Error()
		}

		link, ok := net.FindLink(net.ID(topology.Coord{c.x, c.y}), c.d, c.sign)
		if !ok {
			return false, fmt.Sprintf("link (%d,%d)%s missing from the local mesh", c.x, c.y, c.dir)
		}
		want := cdg.VerifyTurnSetCached(net.WithoutLinks([]topology.Link{link}), vcs, ts)
		exp := serve.DeltaResponse{
			Network: want.Network, Channels: want.Channels, Edges: want.Edges, Acyclic: want.Acyclic,
		}
		if !want.Acyclic {
			exp.Cycle = cdg.FormatCycle(want.Cycle)
		}
		// Byte-for-byte over the verdict fields: provenance and keys are
		// transport metadata, not verdict.
		got.Provenance, got.Key, got.BaseKey = "", "", ""
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(exp)
		if !bytes.Equal(a, b) {
			return false, fmt.Sprintf("link (%d,%d)%s: delta %s != full %s", c.x, c.y, c.dir, a, b)
		}
	}
	return true, ""
}

// traceEvidence pulls the flight recorder at /debug/traces, counts the
// captured traces and checks the slowest one against its own report:
// the summed duration of its top-level spans must sit within
// max(10ms, 50%) of the trace's duration_ms. A trace that reported
// latency its spans cannot account for means the recorder dropped or
// mislinked part of the request's tree.
func traceEvidence(client *http.Client, baseURL string) (int, bool, string) {
	resp, err := client.Get(baseURL + "/debug/traces")
	if err != nil {
		return 0, false, err.Error()
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Sprintf("/debug/traces: status %d", resp.StatusCode)
	}
	var page struct {
		Traces []trace.TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		return 0, false, "/debug/traces: " + err.Error()
	}
	if len(page.Traces) == 0 {
		return 0, true, ""
	}
	slowest := page.Traces[0]
	for _, tj := range page.Traces[1:] {
		if tj.DurationMs > slowest.DurationMs {
			slowest = tj
		}
	}
	// Top-level spans: the origin root, plus any span whose parent
	// fragment was overwritten out of the ring. Children nest inside
	// them, so summing only the top level never double-counts.
	present := make(map[string]bool, len(slowest.Spans))
	for _, sp := range slowest.Spans {
		present[sp.ID] = true
	}
	var sumMS float64
	for _, sp := range slowest.Spans {
		if sp.Parent == "" || !present[sp.Parent] {
			sumMS += float64(sp.DurMicros) / 1e3
		}
	}
	tol := 10.0
	if half := slowest.DurationMs / 2; half > tol {
		tol = half
	}
	if diff := sumMS - slowest.DurationMs; diff > tol || diff < -tol {
		return len(page.Traces), false, fmt.Sprintf("slowest trace %s: span sum %.2fms vs reported %.2fms (tolerance %.2fms)",
			slowest.ID, sumMS, slowest.DurationMs, tol)
	}
	return len(page.Traces), true, ""
}

// identicalVerdicts posts the same request twice sequentially and
// compares the canonicalized responses byte for byte.
func identicalVerdicts(client *http.Client, baseURL string) (bool, string) {
	const body = `{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`
	canon := func() ([]byte, error) {
		resp, err := client.Post(baseURL+"/v1/verify", "application/json", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
		var v serve.VerifyResponse
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return nil, err
		}
		v.Provenance = ""
		return json.Marshal(v)
	}
	a, err := canon()
	if err != nil {
		return false, err.Error()
	}
	b, err := canon()
	if err != nil {
		return false, err.Error()
	}
	if !bytes.Equal(a, b) {
		return false, fmt.Sprintf("first %s, second %s", a, b)
	}
	return true, ""
}

// probeDrain checks the readiness contract on the in-process server:
// ready while serving, 503 once shutdown begins.
func probeDrain(client *http.Client, baseURL string, srv *serve.Server) (bool, string) {
	readyz := func() (int, error) {
		resp, err := client.Get(baseURL + "/readyz")
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	code, err := readyz()
	if err != nil {
		return false, err.Error()
	}
	if code != http.StatusOK {
		return false, fmt.Sprintf("/readyz before drain = %d, want 200", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return false, "shutdown: " + err.Error()
	}
	code, err = readyz()
	if err != nil {
		return false, err.Error()
	}
	if code != http.StatusServiceUnavailable {
		return false, fmt.Sprintf("/readyz during drain = %d, want 503", code)
	}
	return true, ""
}
