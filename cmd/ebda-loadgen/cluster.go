package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/cluster"
	"ebda/internal/core"
	"ebda/internal/serve"
	"ebda/internal/topology"
)

// Cluster mode benchmarks the shard router: it starts N in-process
// replicas (each the full ebda-serve pipeline with a private verify
// cache), builds the deterministic consistent-hash ring over them, and
// drives a seeded workload whose requests are routed like a
// ring-aware client would — 90% to the key's owner, the rest
// deliberately misrouted to exercise the peer-lookup and forwarding
// paths.
//
// The host is one machine, so aggregate throughput cannot come from
// running the replicas' request streams in parallel: the same cores
// would serve all of them and the comparison would measure scheduler
// contention, not the router. Instead the workload is partitioned by
// entry replica and driven one phase per replica; the modeled cluster
// wall is the slowest phase, which is exactly the wall an N-machine
// cluster observes for independent per-replica streams. ScalingX =
// baseline wall / modeled cluster wall then measures what the router
// actually controls — shard balance and the cost of misroute hops —
// and is stable under the race detector because it is a ratio of walls
// measured under identical instrumentation.
//
// The design set is balanced by construction: distinct 8x8-mesh
// turn-subset designs are drawn (seeded) until every replica owns
// exactly designs/replicas of them, so the gate judges routing
// overhead rather than small-sample keyspace imbalance.

// clusterParams carries the -cluster flag set.
type clusterParams struct {
	seed     uint64
	requests int
	conc     int
	replicas int
	designs  int
	misroute float64
	outPath  string
	smoke    bool
	cfg      serve.Config
}

// clusterDesign is one workload design with its precomputed routing
// identity.
type clusterDesign struct {
	body  string
	key   uint64
	owner string
}

// replicaProc is one in-process replica.
type replicaProc struct {
	name  string
	cache *cdg.VerifyCache
	srv   *serve.Server
	url   string
}

func runCluster(p clusterParams, out, errw io.Writer) int {
	if p.replicas < 2 {
		fmt.Fprintln(errw, "ebda-loadgen: -cluster needs -replicas >= 2")
		return 2
	}
	if p.designs < p.replicas || p.designs%p.replicas != 0 {
		fmt.Fprintln(errw, "ebda-loadgen: -designs must be a positive multiple of -replicas")
		return 2
	}
	if p.misroute < 0 || p.misroute > 0.5 {
		fmt.Fprintln(errw, "ebda-loadgen: -misroute outside [0, 0.5]")
		return 2
	}

	names := make([]string, p.replicas)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	ring, err := cluster.New(names)
	if err != nil {
		fmt.Fprintln(errw, "ebda-loadgen:", err)
		return 2
	}

	designs, err := balancedDesigns(p.seed, ring, p.designs/p.replicas)
	if err != nil {
		fmt.Fprintln(errw, "ebda-loadgen:", err)
		return 2
	}
	deltas, err := deltaProbeSet(ring)
	if err != nil {
		fmt.Fprintln(errw, "ebda-loadgen:", err)
		return 2
	}
	items := clusterWorkload(p.seed, p.requests, p.misroute, names, designs, deltas)

	client := &http.Client{Timeout: 60 * time.Second}

	// Phase 1: single-replica baseline — the whole workload against one
	// standalone server, timed, and its cache snapshotted for the
	// warm-start probe.
	soloCache := &cdg.VerifyCache{}
	solo, soloStop, err := startReplicaProc("solo", soloCache, p.cfg, nil)
	if err != nil {
		fmt.Fprintln(errw, "ebda-loadgen:", err)
		return 2
	}
	baseReqs := make([]genReq, len(items))
	for i, it := range items {
		baseReqs[i] = it.req
	}
	baseResults, baseWall := driveStream(client, solo.url, baseReqs, p.conc)
	var snapshot bytes.Buffer
	if _, err := soloCache.SaveSnapshot(&snapshot); err != nil {
		fmt.Fprintln(errw, "ebda-loadgen: snapshot:", err)
		soloStop()
		return 2
	}
	soloStop()
	fmt.Fprintf(errw, "ebda-loadgen: baseline %d requests in %.3fs (%d cache entries snapshotted)\n",
		len(baseReqs), baseWall, soloCache.Stats().Entries)

	// Phase 2: the replica ring. Same workload, partitioned by entry
	// replica, one timed phase per replica.
	procs, stopAll, err := startClusterProcs(names, ring, p.cfg)
	if err != nil {
		fmt.Fprintln(errw, "ebda-loadgen:", err)
		return 2
	}
	defer stopAll()

	streams := make(map[string][]genReq, len(names))
	for _, it := range items {
		streams[it.entry] = append(streams[it.entry], it.req)
	}
	bench := serve.ClusterBench{
		Kind:         serve.ClusterBenchKind,
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339), //ebda:allow detlint bench snapshots are stamped with real wall time by design
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		Seed:         p.seed,
		Replicas:     p.replicas,
		Designs:      p.designs,
		MisrouteRate: p.misroute,

		BaselineWallSeconds: baseWall,
	}
	if baseWall > 0 {
		bench.BaselineRPS = float64(len(baseReqs)) / baseWall
	}
	var aggLat []float64
	maxPhase := 0.0
	for _, proc := range procs {
		stream := streams[proc.name]
		results, wall := driveStream(client, proc.url, stream, p.conc)
		if wall > maxPhase {
			maxPhase = wall
		}
		rb := serve.ReplicaBench{Name: proc.name, Requests: len(stream), WallSeconds: wall}
		lat := make([]float64, 0, len(results))
		for _, r := range results {
			lat = append(lat, r.latencyMS)
			rb.Cache += r.cache
			rb.Computed += r.computed
			rb.Coalesced += r.coalesced
			rb.Peer += r.peer
			rb.Forwarded += r.forwarded
			switch {
			case r.status >= 500:
				bench.Status5xx++
			case r.status >= 400:
				bench.Status4xx++
			case r.status >= 200 && r.status < 300:
				bench.Status2xx++
			}
			bench.Requests++
		}
		aggLat = append(aggLat, lat...)
		if wall > 0 {
			rb.ThroughputRPS = float64(len(stream)) / wall
		}
		rb.P50Millis = serve.Quantile(lat, 0.50)
		rb.P99Millis = serve.Quantile(lat, 0.99)
		bench.PeerHits += rb.Peer
		bench.Forwards += rb.Forwarded
		bench.PerReplica = append(bench.PerReplica, rb)
		fmt.Fprintf(errw, "ebda-loadgen: phase %s: %d requests in %.3fs (peer %d, forwarded %d)\n",
			proc.name, len(stream), wall, rb.Peer, rb.Forwarded)
	}
	bench.ClusterWallSeconds = maxPhase
	if maxPhase > 0 {
		bench.AggregateRPS = float64(bench.Requests) / maxPhase
		bench.ScalingX = baseWall / maxPhase
	}
	if bench.Requests > 0 {
		bench.PeerHitRate = float64(bench.PeerHits) / float64(bench.Requests)
		bench.ForwardRate = float64(bench.Forwards) / float64(bench.Requests)
	}
	bench.AggP50Millis = serve.Quantile(aggLat, 0.50)
	bench.AggP99Millis = serve.Quantile(aggLat, 0.99)

	// Probes: the cluster's correctness contracts, checked regardless of
	// -smoke (they cost a handful of requests).
	probeFails := clusterProbes(client, errw, procs, ring, designs, deltas, &snapshot, p.cfg)

	if p.outPath != "" {
		f, err := os.Create(p.outPath)
		if err != nil {
			fmt.Fprintln(errw, "ebda-loadgen:", err)
			return 2
		}
		if err := bench.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(errw, "ebda-loadgen:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(errw, "ebda-loadgen:", err)
			return 2
		}
		fmt.Fprintf(errw, "ebda-loadgen: cluster snapshot written to %s\n", p.outPath)
	}

	fmt.Fprintf(out, "cluster: %d replicas, %d requests, %d designs, misroute %.0f%%\n",
		bench.Replicas, bench.Requests, bench.Designs, bench.MisrouteRate*100)
	fmt.Fprintf(out, "baseline %.3fs (%.1f req/s)  cluster %.3fs modeled (%.1f req/s)  scaling %.2fx\n",
		bench.BaselineWallSeconds, bench.BaselineRPS, bench.ClusterWallSeconds, bench.AggregateRPS, bench.ScalingX)
	fmt.Fprintf(out, "routing: peer hits %d (%.3f)  forwards %d (%.3f)  2xx %d  4xx %d  5xx %d\n",
		bench.PeerHits, bench.PeerHitRate, bench.Forwards, bench.ForwardRate,
		bench.Status2xx, bench.Status4xx, bench.Status5xx)
	fmt.Fprintf(out, "latency: agg p50 %.2fms  agg p99 %.2fms\n", bench.AggP50Millis, bench.AggP99Millis)

	// Baseline-phase sanity folds into smoke: the workload itself must
	// have been healthy for the comparison to mean anything.
	base5xx := 0
	for _, r := range baseResults {
		if r.status >= 500 {
			base5xx++
		}
	}

	if p.smoke {
		violations := probeFails
		fail := func(format string, args ...any) {
			violations++
			fmt.Fprintf(errw, "SMOKE FAIL: "+format+"\n", args...)
		}
		if base5xx != 0 {
			fail("%d baseline responses were 5xx, want 0", base5xx)
		}
		if bench.Status5xx != 0 {
			fail("%d cluster responses were 5xx, want 0", bench.Status5xx)
		}
		if bench.PeerHits < 1 {
			fail("no verdict was answered from a peer cache")
		}
		if bench.Forwards < 1 {
			fail("no request was forwarded to its owner")
		}
		if floor := 0.75 * float64(p.replicas); bench.ScalingX < floor {
			fail("scaling %.2fx below the %.2fx floor (%d replicas)", bench.ScalingX, floor, p.replicas)
		}
		if violations > 0 {
			return 1
		}
		fmt.Fprintln(out, "smoke: all cluster invariants hold")
	} else if probeFails > 0 {
		fmt.Fprintf(errw, "ebda-loadgen: %d cluster probes failed (run with -smoke to gate)\n", probeFails)
	}
	return 0
}

// balancedDesigns draws distinct 8x8-mesh turn-subset designs (the 8
// possible 2D 90-degree turns give 255 non-empty subsets) in seeded
// order until every ring member owns exactly perReplica of them.
func balancedDesigns(seed uint64, ring *cluster.Ring, perReplica int) ([]clusterDesign, error) {
	turnNames := []string{"X+>Y+", "X+>Y-", "X->Y+", "X->Y-", "Y+>X+", "Y+>X-", "Y->X+", "Y->X-"}
	net := topology.NewMesh(8, 8)
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x5bd1e995))
	masks := rng.Perm(255)

	buckets := make(map[string][]clusterDesign)
	filled := 0
	for _, m := range masks {
		mask := m + 1 // 1..255: never the empty turn set
		var parts []string
		for b := 0; b < len(turnNames); b++ {
			if mask&(1<<b) != 0 {
				parts = append(parts, turnNames[b])
			}
		}
		spec := strings.Join(parts, ",")
		key, err := turnsKey(net, spec)
		if err != nil {
			return nil, err
		}
		owner := ring.Owner(key)
		if len(buckets[owner]) >= perReplica {
			continue
		}
		body := fmt.Sprintf(`{"network":{"kind":"mesh","sizes":[8,8]},"turns":"%s"}`, spec)
		buckets[owner] = append(buckets[owner], clusterDesign{body: body, key: key, owner: owner})
		filled++
		if filled == perReplica*ring.Size() {
			break
		}
	}
	if filled < perReplica*ring.Size() {
		return nil, fmt.Errorf("only %d of %d designs balanced across the ring (raise -designs granularity)",
			filled, perReplica*ring.Size())
	}
	var designs []clusterDesign
	for _, name := range ring.Replicas() {
		designs = append(designs, buckets[name]...)
	}
	return designs, nil
}

// turnsKey computes the verify-cache identity of a turn-list design the
// same way the server's build path does.
func turnsKey(net *topology.Network, spec string) (uint64, error) {
	turns, err := core.ParseTurnList(spec)
	if err != nil {
		return 0, err
	}
	ts := core.NewTurnSet()
	for _, t := range turns {
		ts.Add(t.From, t.To, core.ByTheorem1)
	}
	vcs := cdg.VCConfigFor(net.Dims(), ts.Classes())
	key, _ := cdg.VerifyKey(net, vcs, ts)
	return key, nil
}

// deltaProbeSet builds a few single-link delta requests against a fixed
// base design, each with its precomputed delta-cache identity, so delta
// traffic routes through the ring like verify traffic does.
func deltaProbeSet(ring *cluster.Ring) ([]clusterDesign, error) {
	net := topology.NewMesh(8, 8)
	chain, err := core.ParseChain("PA[X+ X- Y-] -> PB[Y+]")
	if err != nil {
		return nil, err
	}
	ts := chain.Turns(core.DefaultTurnOptions)
	vcs := cdg.VCConfigFor(net.Dims(), chain.Channels())
	sites := []struct {
		x, y int
		dir  string
		d    channel.Dim
		sign channel.Sign
	}{
		{1, 1, "X+", 0, channel.Plus},
		{2, 3, "Y+", 1, channel.Plus},
		{4, 4, "X-", 0, channel.Minus},
		{5, 2, "Y-", 1, channel.Minus},
		{6, 5, "X+", 0, channel.Plus},
		{3, 6, "Y+", 1, channel.Plus},
	}
	var out []clusterDesign
	for _, s := range sites {
		link, ok := net.FindLink(net.ID(topology.Coord{s.x, s.y}), s.d, s.sign)
		if !ok {
			return nil, fmt.Errorf("delta probe link (%d,%d)%s missing", s.x, s.y, s.dir)
		}
		diff := cdg.Diff{RemoveLinks: []topology.Link{link}}
		key, _ := cdg.DeltaKey(net, vcs, ts, diff)
		body := fmt.Sprintf(`{"base":%s,"remove_links":[{"at":[%d,%d],"dir":"%s"}]}`,
			deltaBaseBody, s.x, s.y, s.dir)
		out = append(out, clusterDesign{body: body, key: key, owner: ring.Owner(key)})
	}
	return out, nil
}

// workItem is one workload request with its chosen entry replica.
type workItem struct {
	req   genReq
	entry string
}

// clusterWorkload builds the seeded request stream: ~92% design
// verifications and ~8% single-link deltas, each routed to its key's
// owner except for a deliberate misroute fraction.
func clusterWorkload(seed uint64, n int, misroute float64, names []string, designs, deltas []clusterDesign) []workItem {
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x2545f491))
	items := make([]workItem, 0, n)
	for i := 0; i < n; i++ {
		var d clusterDesign
		path := "/v1/verify"
		if rng.Intn(100) < 8 {
			d = deltas[rng.Intn(len(deltas))]
			path = "/v1/verify/delta"
		} else {
			d = designs[rng.Intn(len(designs))]
		}
		entry := d.owner
		if rng.Float64() < misroute {
			// A deliberate misroute: any replica other than the owner.
			for {
				entry = names[rng.Intn(len(names))]
				if entry != d.owner {
					break
				}
			}
		}
		items = append(items, workItem{req: genReq{path: path, body: d.body}, entry: entry})
	}
	return items
}

// startReplicaProc starts one in-process server with a private cache on
// a loopback port, returning it with its stop function.
func startReplicaProc(name string, cache *cdg.VerifyCache, cfg serve.Config, cc *serve.ClusterConfig) (*replicaProc, func(), error) {
	cfg.Cluster = cc
	srv := serve.NewReplica(cfg, cache)
	mux := http.NewServeMux()
	srv.Register(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go http.Serve(ln, mux)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ln.Close()
	}
	return &replicaProc{name: name, cache: cache, srv: srv, url: "http://" + ln.Addr().String()}, stop, nil
}

// startClusterProcs starts every ring member. Listeners are bound
// before any server is constructed so each replica's config can name
// all peer URLs.
func startClusterProcs(names []string, ring *cluster.Ring, cfg serve.Config) ([]*replicaProc, func(), error) {
	lns := make([]net.Listener, len(names))
	urls := make(map[string]string, len(names))
	for i, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, prev := range lns[:i] {
				prev.Close()
			}
			return nil, nil, err
		}
		lns[i] = ln
		urls[name] = "http://" + ln.Addr().String()
	}
	procs := make([]*replicaProc, len(names))
	var stops []func()
	for i, name := range names {
		peers := make(map[string]string, len(names)-1)
		for other, u := range urls {
			if other != name {
				peers[other] = u
			}
		}
		cache := &cdg.VerifyCache{}
		c := cfg
		c.Cluster = &serve.ClusterConfig{Self: name, Ring: ring, Peers: peers}
		srv := serve.NewReplica(c, cache)
		mux := http.NewServeMux()
		srv.Register(mux)
		go http.Serve(lns[i], mux)
		procs[i] = &replicaProc{name: name, cache: cache, srv: srv, url: urls[name]}
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		stops = append(stops, func() { lns[i].Close() })
	}
	var once sync.Once
	stopAll := func() {
		once.Do(func() {
			for _, stop := range stops {
				stop()
			}
		})
	}
	return procs, stopAll, nil
}

// driveStream runs one request stream through conc client workers and
// returns per-request results with the phase wall.
func driveStream(client *http.Client, baseURL string, reqs []genReq, conc int) ([]result, float64) {
	results := make([]result, len(reqs))
	start := time.Now() //ebda:allow detlint the load generator measures wall latency by design
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = doReq(client, baseURL, reqs[i])
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, time.Since(start).Seconds() //ebda:allow detlint the load generator measures wall latency by design
}

// clusterProbes asserts the cluster's correctness contracts after the
// workload: byte-identical verdicts from every replica, single-hop loop
// protection, snapshot warm starts and peer-served cold edges. It
// returns the number of failed probes, logging each failure.
func clusterProbes(client *http.Client, errw io.Writer, procs []*replicaProc, ring *cluster.Ring,
	designs, deltas []clusterDesign, snapshot *bytes.Buffer, cfg serve.Config) int {
	fails := 0
	fail := func(format string, args ...any) {
		fails++
		fmt.Fprintf(errw, "PROBE FAIL: "+format+"\n", args...)
	}
	urls := make(map[string]string, len(procs))
	for _, proc := range procs {
		urls[proc.name] = proc.url
	}

	// Probe 1: byte-identical verdicts regardless of the answering
	// replica, for a spread of workload designs (one owned by each
	// member) and one delta.
	probeSet := make([]clusterDesign, 0, ring.Size()+1)
	seen := make(map[string]bool)
	for _, d := range designs {
		if !seen[d.owner] {
			seen[d.owner] = true
			probeSet = append(probeSet, d)
		}
	}
	for _, d := range probeSet {
		var canon []string
		for _, proc := range procs {
			res, body, err := postRaw(client, proc.url+"/v1/verify", d.body)
			if err != nil || res != http.StatusOK {
				fail("replica %s: verify probe status %d err %v", proc.name, res, err)
				continue
			}
			var vr serve.VerifyResponse
			if err := json.Unmarshal(body, &vr); err != nil {
				fail("replica %s: verify probe decode: %v", proc.name, err)
				continue
			}
			vr.Provenance = ""
			cb, _ := json.Marshal(vr)
			canon = append(canon, string(cb))
		}
		sort.Strings(canon)
		if len(canon) > 0 && canon[0] != canon[len(canon)-1] {
			fail("verdicts for a design diverged across replicas:\n%s\nvs\n%s", canon[0], canon[len(canon)-1])
		}
	}
	for _, proc := range procs {
		res, body, err := postRaw(client, proc.url+"/v1/verify/delta", deltas[0].body)
		if err != nil || res != http.StatusOK {
			fail("replica %s: delta probe status %d err %v", proc.name, res, err)
			continue
		}
		var dr serve.DeltaResponse
		if err := json.Unmarshal(body, &dr); err != nil {
			fail("replica %s: delta probe decode: %v", proc.name, err)
		}
	}

	// Probe 2: single-hop loop protection. A request pre-marked with the
	// forward header at a non-owner must be served locally (computed on
	// a fresh design: nothing has cached it).
	loopSpec := "X+>Y+,Y->X-"
	loopNet := topology.NewMesh(9, 9)
	loopKey, err := turnsKey(loopNet, loopSpec)
	if err != nil {
		fail("loop probe key: %v", err)
	} else {
		loopOwner := ring.Owner(loopKey)
		var nonOwner *replicaProc
		for _, proc := range procs {
			if proc.name != loopOwner {
				nonOwner = proc
				break
			}
		}
		body := fmt.Sprintf(`{"network":{"kind":"mesh","sizes":[9,9]},"turns":"%s"}`, loopSpec)
		req, _ := http.NewRequest(http.MethodPost, nonOwner.url+"/v1/verify", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(serve.ForwardHeader, "probe")
		resp, err := client.Do(req)
		if err != nil {
			fail("loop probe transport: %v", err)
		} else {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var vr serve.VerifyResponse
			if resp.StatusCode != http.StatusOK || json.Unmarshal(raw, &vr) != nil {
				fail("loop probe status %d: %s", resp.StatusCode, raw)
			} else if vr.Provenance != "computed" {
				fail("loop probe provenance %q, want computed (the marked request must not hop again)", vr.Provenance)
			}
		}
	}

	// Probe 3: snapshot warm start. A standalone replica loaded from the
	// baseline snapshot answers its first hot-key request from cache.
	warmCache := &cdg.VerifyCache{}
	if _, err := warmCache.LoadSnapshot(bytes.NewReader(snapshot.Bytes())); err != nil {
		fail("warm-start load: %v", err)
	} else {
		warm, warmStop, err := startReplicaProc("warm", warmCache, cfg, nil)
		if err != nil {
			fail("warm-start boot: %v", err)
		} else {
			res, body, err := postRaw(client, warm.url+"/v1/verify", designs[0].body)
			var vr serve.VerifyResponse
			if err != nil || res != http.StatusOK || json.Unmarshal(body, &vr) != nil {
				fail("warm-start probe status %d err %v", res, err)
			} else if vr.Provenance != "cache" {
				fail("warm-started replica's first hot-key provenance %q, want cache", vr.Provenance)
			}
			warmStop()
		}
	}

	// Probe 4: a cold edge router (ring non-member, empty cache) serves
	// hot keys from peers, never by computing.
	edgePeers := make(map[string]string, len(urls))
	for name, u := range urls {
		edgePeers[name] = u
	}
	edgeCfg := &serve.ClusterConfig{Self: "edge", Ring: ring, Peers: edgePeers}
	edgeCache := &cdg.VerifyCache{}
	edge, edgeStop, err := startReplicaProc("edge", edgeCache, cfg, edgeCfg)
	if err != nil {
		fail("edge boot: %v", err)
	} else {
		res, body, err := postRaw(client, edge.url+"/v1/verify", designs[0].body)
		var vr serve.VerifyResponse
		if err != nil || res != http.StatusOK || json.Unmarshal(body, &vr) != nil {
			fail("edge probe status %d err %v", res, err)
		} else if vr.Provenance != "peer" {
			fail("cold edge replica's hot-key provenance %q, want peer", vr.Provenance)
		}
		edgeStop()
	}
	return fails
}

// postRaw posts a body and returns status + response bytes.
func postRaw(client *http.Client, url, body string) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}
