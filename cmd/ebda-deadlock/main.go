// Command ebda-deadlock runs the two static deadlock analyses on a design:
// the Dally cycle check on the channel dependency graph, and the sharper
// deadlock-configuration (knot) search that distinguishes escape-protected
// cyclic designs (Duato-style) from genuinely deadlock-capable ones.
//
// Usage examples:
//
//	ebda-deadlock -chain "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]" -mesh 6x6
//	ebda-deadlock -alg duato -mesh 4x4
//	ebda-deadlock -alg unrestricted -mesh 4x4     (prints the configuration)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/deadlock"
	"ebda/internal/duato"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

func main() {
	chainSpec := flag.String("chain", "", "partition chain to analyse")
	algName := flag.String("alg", "", "named algorithm: xy, odd-even, planar, duato, duato-torus, dateline, unrestricted")
	meshSpec := flag.String("mesh", "6x6", "mesh sizes, e.g. 6x6 or 4x4x4")
	torus := flag.Bool("torus", false, "use a torus instead of a mesh")
	flag.Parse()

	sizes, err := parseSizes(*meshSpec)
	if err != nil {
		fatal(err)
	}
	var net *topology.Network
	if *torus {
		net = topology.NewTorus(sizes...)
	} else {
		net = topology.NewMesh(sizes...)
	}

	var (
		alg routing.Algorithm
		vcs cdg.VCConfig
	)
	switch {
	case *chainSpec != "" && *algName != "":
		fatal(fmt.Errorf("use either -chain or -alg"))
	case *chainSpec != "":
		chain, err := core.ParseChain(*chainSpec)
		if err != nil {
			fatal(err)
		}
		fc := routing.NewFromChain("chain", chain, net.Dims())
		alg, vcs = fc, cdg.VCConfig(fc.VCs())
		fmt.Printf("design: %s\n", chain)
	case *algName != "":
		alg, vcs, err = buildAlg(*algName, net)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("design: %s\n", alg.Name())
	default:
		fatal(fmt.Errorf("one of -chain or -alg is required"))
	}

	rep := routing.Verify(net, vcs, alg)
	fmt.Printf("dependency graph: %s\n", rep)
	cfg := deadlock.Find(net, vcs, alg)
	fmt.Println(cfg)
	switch {
	case rep.Acyclic:
		fmt.Println("verdict: deadlock-free by Dally's condition (acyclic dependency graph)")
	case cfg.Empty():
		fmt.Println("verdict: cyclic dependency graph but no deadlock configuration —")
		fmt.Println("         escape-protected in Duato's sense (every circular wait has an exit)")
		os.Exit(0)
	default:
		fmt.Println("verdict: DEADLOCK-CAPABLE (concrete configuration above)")
		os.Exit(1)
	}
}

func buildAlg(name string, net *topology.Network) (routing.Algorithm, cdg.VCConfig, error) {
	switch name {
	case "xy":
		return routing.NewXY(), nil, nil
	case "odd-even", "oe":
		return routing.NewOddEven(), nil, nil
	case "planar", "planar-adaptive":
		p := routing.NewPlanarAdaptive()
		return p, cdg.VCConfig(p.VCsPerDim(net)), nil
	case "duato":
		d := duato.New()
		return d, cdg.VCConfig(d.VCsPerDim(net)), nil
	case "duato-torus":
		d := duato.NewTorus()
		return d, cdg.VCConfig(d.VCsPerDim(net)), nil
	case "dateline":
		d := routing.NewDatelineTorus()
		return d, cdg.VCConfig(d.VCsPerDim(net)), nil
	case "unrestricted":
		return routing.NewUnrestricted(), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebda-deadlock:", err)
	os.Exit(2)
}
