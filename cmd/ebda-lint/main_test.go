package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden packages under internal/lint/testdata are the fixtures: the
// deadlint clean package is diagnostic-free, the cyclic package carries a
// seeded AB/BA deadlock. Patterns resolve against the module root, so
// these paths work regardless of the test's working directory.
const (
	cleanPkg  = "internal/lint/testdata/deadlint/clean"
	cyclicPkg = "internal/lint/testdata/deadlint/cyclic"
)

// TestExitClean pins exit 0 and empty stdout on a clean package.
func TestExitClean(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{cleanPkg}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; stdout: %s stderr: %s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

// TestExitDiagnostics pins exit 1, module-root-relative paths and the
// deadlint message on the seeded cycle.
func TestExitDiagnostics(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{cyclicPkg}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, errw.String())
	}
	text := out.String()
	if !strings.Contains(text, "lock-order cycle") {
		t.Errorf("missing deadlint diagnostic:\n%s", text)
	}
	if !strings.HasPrefix(text, cyclicPkg+"/cyclic.go:") {
		t.Errorf("diagnostic path is not module-root-relative:\n%s", text)
	}
}

// TestExitLoadError pins exit 2 when a pattern names no loadable package.
func TestExitLoadError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"internal/no/such/package"}, &out, &errw); code != 2 {
		t.Fatalf("run = %d, want 2; stdout: %s", code, out.String())
	}
	if errw.Len() == 0 {
		t.Error("load error printed nothing to stderr")
	}
}

// TestExitUsageError pins exit 2 on an unknown -only analyzer.
func TestExitUsageError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-only", "nosuchlint", cleanPkg}, &out, &errw); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown analyzer") {
		t.Errorf("missing analyzer list in usage error: %s", errw.String())
	}
}

// TestJSONOutput decodes the -json form and checks the record fields.
func TestJSONOutput(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-json", cyclicPkg}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, errw.String())
	}
	var records []diagRecord
	if err := json.Unmarshal(out.Bytes(), &records); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2 (one per cycle edge): %+v", len(records), records)
	}
	for _, r := range records {
		if r.Analyzer != "deadlint" || r.File != cyclicPkg+"/cyclic.go" || r.Line == 0 || r.Message == "" {
			t.Errorf("malformed record: %+v", r)
		}
	}
}

// TestJSONClean pins that -json renders an empty array, not null.
func TestJSONClean(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-json", cleanPkg}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, errw.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestSARIFOutput writes a SARIF log and checks the schema-bearing
// fields a code-scanning upload needs.
func TestSARIFOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.sarif")
	var out, errw bytes.Buffer
	if code := run([]string{"-sarif", path, cyclicPkg}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, errw.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad SARIF envelope: version %q, %d runs", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "ebda-lint" {
		t.Errorf("driver name %q", run0.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run0.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"detlint", "locklint", "hotpath", "verifygate", "deadlint", "ctxlint"} {
		if !ruleIDs[want] {
			t.Errorf("rule %s missing from SARIF driver", want)
		}
	}
	if len(run0.Results) != 2 {
		t.Fatalf("got %d SARIF results, want 2", len(run0.Results))
	}
	for _, res := range run0.Results {
		if res.RuleID != "deadlint" || res.Level != "error" || len(res.Locations) != 1 {
			t.Errorf("malformed result: %+v", res)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != cyclicPkg+"/cyclic.go" || loc.Region.StartLine == 0 {
			t.Errorf("malformed location: %+v", loc)
		}
	}
	// The text rendering still goes to stdout alongside the file.
	if !strings.Contains(out.String(), "lock-order cycle") {
		t.Errorf("-sarif to a file suppressed the text output:\n%s", out.String())
	}
}

// TestBaselineSuppression round-trips the baseline: a file generated from
// the findings turns exit 1 into exit 0, and a note lands on stderr.
func TestBaselineSuppression(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-json", cyclicPkg}, &out, &errw); code != 1 {
		t.Fatalf("seed run = %d, want 1", code)
	}
	var records []diagRecord
	if err := json.Unmarshal(out.Bytes(), &records); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("# generated by TestBaselineSuppression\n\n")
	for _, r := range records {
		sb.WriteString(r.baselineKey())
		sb.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-baseline", path, cyclicPkg}, &out, &errw); code != 0 {
		t.Fatalf("baselined run = %d, want 0; stdout: %s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("baselined findings still printed:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "suppressed by baseline") {
		t.Errorf("missing suppression note on stderr: %s", errw.String())
	}
}

// TestBaselineMalformed pins exit 2 on a baseline file with a bad entry.
func TestBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, []byte("not a tab separated entry\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", path, cleanPkg}, &out, &errw); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "baseline entries are") {
		t.Errorf("missing format hint: %s", errw.String())
	}
}
