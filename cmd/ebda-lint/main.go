// Command ebda-lint runs the repo's analyzer suite (detlint, locklint,
// hotpath, verifygate, deadlint, ctxlint) over the given packages and
// reports violations of the engine's determinism, concurrency, hot-path
// and deadlock-freedom invariants.
//
// Usage:
//
//	ebda-lint [-only list] [-json] [-sarif file] [-baseline file] [patterns...]
//
// Patterns are package directories relative to the module root, or the
// "./..." form to walk a tree; the default is "./...". Diagnostics print
// as "file:line:col: analyzer: message" with file paths relative to the
// module root, so output is stable across checkouts. Exit status is 0
// when clean, 1 when any diagnostic fires, and 2 on load or usage errors.
//
// -json renders the diagnostics as a JSON array instead of text. -sarif
// writes a SARIF 2.1.0 log to the given file ("-" for stdout) alongside
// the normal output, for upload to code-scanning UIs. -baseline reads a
// suppression file of known findings (one "analyzer<TAB>file<TAB>message"
// per line, # comments); baselined diagnostics are dropped, so CI gates
// only on new findings.
//
// Individual findings can be suppressed at the offending line (or the
// line above it) with a justification:
//
//	//ebda:allow detlint bench harness measures wall time by design
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ebda/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// diagRecord is one diagnostic with its path rewritten relative to the
// module root — the stable form shared by text, JSON, SARIF and the
// baseline.
type diagRecord struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func (r diagRecord) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", r.File, r.Line, r.Column, r.Analyzer, r.Message)
}

// baselineKey is the identity a suppression matches on: line numbers are
// deliberately excluded so unrelated edits above a known finding do not
// resurface it.
func (r diagRecord) baselineKey() string {
	return r.Analyzer + "\t" + r.File + "\t" + r.Message
}

func run(argv []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ebda-lint", flag.ContinueOnError)
	fs.SetOutput(errw)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "render diagnostics as a JSON array")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "", "suppression file of known findings to ignore")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(errw, "ebda-lint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(errw, "ebda-lint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(errw, "ebda-lint: %v\n", err)
		return 2
	}
	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(errw, "ebda-lint: %v\n", err)
		return 2
	}
	dirs, err := lint.Expand(loader.ModRoot(), patterns)
	if err != nil {
		fmt.Fprintf(errw, "ebda-lint: %v\n", err)
		return 2
	}

	var records []diagRecord
	suppressed := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(errw, "ebda-lint: %s: %v\n", dir, err)
			return 2
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(errw, "ebda-lint: %s: %v\n", dir, err)
			return 2
		}
		for _, d := range diags {
			r := diagRecord{
				Analyzer: d.Analyzer,
				File:     relPath(loader.ModRoot(), d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			}
			if baseline[r.baselineKey()] {
				suppressed++
				continue
			}
			records = append(records, r)
		}
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, out, analyzers, records); err != nil {
			fmt.Fprintf(errw, "ebda-lint: %v\n", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if records == nil {
			records = []diagRecord{}
		}
		if err := enc.Encode(records); err != nil {
			fmt.Fprintf(errw, "ebda-lint: %v\n", err)
			return 2
		}
	} else if *sarifPath != "-" {
		for _, r := range records {
			fmt.Fprintln(out, r)
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(errw, "ebda-lint: %d finding(s) suppressed by baseline %s\n", suppressed, *baselinePath)
	}
	if len(records) > 0 {
		return 1
	}
	return 0
}

// relPath rewrites an absolute diagnostic path relative to the module
// root with forward slashes; paths outside the module pass through.
func relPath(root, name string) string {
	rel, err := filepath.Rel(root, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(name)
	}
	return filepath.ToSlash(rel)
}

// loadBaseline parses a suppression file: one tab-separated
// "analyzer<TAB>file<TAB>message" per line, blank lines and # comments
// skipped. An empty path yields an empty baseline.
func loadBaseline(path string) (map[string]bool, error) {
	out := map[string]bool{}
	if path == "" {
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("%s:%d: baseline entries are analyzer<TAB>file<TAB>message", path, lineno)
		}
		out[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SARIF 2.1.0 output, minimal but schema-valid: one run, one rule per
// analyzer, one result per diagnostic with a physical location anchored
// at the module root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the records as a SARIF log to path ("-" = out).
func writeSARIF(path string, out io.Writer, analyzers []*lint.Analyzer, records []diagRecord) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(records))
	for _, r := range records {
		results = append(results, sarifResult{
			RuleID:  r.Analyzer,
			Level:   "error",
			Message: sarifText{Text: r.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: r.File, URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: r.Line, StartColumn: r.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ebda-lint", Rules: rules}},
			Results: results,
		}},
	}
	var w io.Writer = out
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// selectAnalyzers resolves the -only list against the registered suite.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, names(all))
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return picked, nil
}

func names(as []*lint.Analyzer) string {
	var b strings.Builder
	for i, a := range as {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
	}
	return b.String()
}
