// Command ebda-lint runs the repo's analyzer suite (detlint, locklint,
// hotpath, verifygate) over the given packages and reports violations of
// the engine's determinism, concurrency and hot-path invariants.
//
// Usage:
//
//	ebda-lint [-only list] [patterns...]
//
// Patterns are package directories relative to the module root, or the
// "./..." form to walk a tree; the default is "./...". Diagnostics print
// as "file:line:col: analyzer: message". Exit status is 0 when clean, 1
// when any diagnostic fires, and 2 on load or usage errors.
//
// Individual findings can be suppressed at the offending line (or the
// line above it) with a justification:
//
//	//ebda:allow detlint bench harness measures wall time by design
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ebda/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, out, errw *os.File) int {
	fs := flag.NewFlagSet("ebda-lint", flag.ContinueOnError)
	fs.SetOutput(errw)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(errw, "ebda-lint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(errw, "ebda-lint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(errw, "ebda-lint: %v\n", err)
		return 2
	}
	dirs, err := lint.Expand(loader.ModRoot(), patterns)
	if err != nil {
		fmt.Fprintf(errw, "ebda-lint: %v\n", err)
		return 2
	}

	found := false
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(errw, "ebda-lint: %s: %v\n", dir, err)
			return 2
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(errw, "ebda-lint: %s: %v\n", dir, err)
			return 2
		}
		for _, d := range diags {
			found = true
			fmt.Fprintln(out, d)
		}
	}
	if found {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only list against the registered suite.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, names(all))
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return picked, nil
}

func names(as []*lint.Analyzer) string {
	var b strings.Builder
	for i, a := range as {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
	}
	return b.String()
}
