package main

import (
	"bytes"
	"strings"
	"testing"
)

const goldenDir = "../../testdata/graphio"

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestVerifyGoldenVerdicts(t *testing.T) {
	cases := []struct {
		args []string
		code int
		want string
	}{
		{[]string{"verify", "-mode=loop", goldenDir + "/xy3x3-out4.txt"}, 0, "loop: 18 channels, 17 edges: VERIFIED"},
		{[]string{"verify", "-mode=liveness", goldenDir + "/xy3x3-out4.txt"}, 0, "liveness: 18 channels, 17 edges: VERIFIED"},
		{[]string{"verify", "-mode=escape", "-escape", "10,11,12,13,14,15,16,17", goldenDir + "/xy3x3-out4.txt"}, 0, "escape: 18 channels, 17 edges: VERIFIED"},
		{[]string{"verify", "-mode=subrel", goldenDir + "/xy3x3-out4.txt"}, 0, "subrel: 18 channels, 17 edges: VERIFIED (subrelation: 17 edges)"},
		{[]string{"verify", "-mode=loop", goldenDir + "/cycle4.txt"}, 1, "loop: 5 channels, 4 edges: VIOLATED (cycle): n1 => n2 => n3 => (repeat)"},
		{[]string{"verify", "-mode=liveness", goldenDir + "/cycle4.txt"}, 1, "liveness: 5 channels, 4 edges: VIOLATED (cycle): n0 => n1 => [n1 => n2 => n3 => (repeat)]"},
		{[]string{"verify", "-mode=escape", "-escape", "2", goldenDir + "/cycle4.txt"}, 1, "escape: 5 channels, 4 edges: VIOLATED (escape-stranded): n2"},
		{[]string{"verify", "-mode=subrel", goldenDir + "/cycle4.txt"}, 1, "subrel: 5 channels, 4 edges: VIOLATED (no-subrelation): n0 => [n1 => n2 => n3 => (repeat)]"},
		{[]string{"verify", "-mode=escape", "-escape", "4", goldenDir + "/escape-ok.txt"}, 0, "escape: 6 channels, 7 edges: VERIFIED"},
		{[]string{"verify", "-mode=liveness", goldenDir + "/deadend.txt"}, 1, "liveness: 4 channels, 2 edges: VIOLATED (dead-end): n0 => n1 => n2"},
		{[]string{"verify", "-mode=liveness", goldenDir + "/escape-ok.json"}, 1, "liveness: 6 channels, 7 edges: VIOLATED (cycle): n0 => n2 => [n2 => n3 => (repeat)]"},
	}
	for _, tc := range cases {
		code, out, errb := runCLI(t, tc.args...)
		if code != tc.code {
			t.Fatalf("%v: exit %d (stderr %q), want %d", tc.args, code, errb, tc.code)
		}
		if got := strings.TrimSuffix(out, "\n"); got != tc.want {
			t.Fatalf("%v:\n got %q\nwant %q", tc.args, got, tc.want)
		}
	}
}

func TestImportSummary(t *testing.T) {
	code, out, _ := runCLI(t, "import", goldenDir+"/escape-ok.txt")
	if code != 0 || out != "6 channels, 7 edges, 2 inputs, 1 outputs\n" {
		t.Fatalf("exit %d out %q", code, out)
	}
}

func TestImportParseErrorExit2(t *testing.T) {
	code, _, errb := runCLI(t, "import", goldenDir+"/does-not-exist.txt")
	if code != 2 || errb == "" {
		t.Fatalf("exit %d stderr %q", code, errb)
	}
}

func TestExportJSONMatchesGolden(t *testing.T) {
	code, out, errb := runCLI(t, "export", "-json", goldenDir+"/escape-ok.txt")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	want := `{"channels":6,"inputs":[0,1],"outputs":[5],"edges":[[0,2],[1,3],[2,3],[2,4],[3,2],[3,4],[4,5]]}` + "\n"
	if out != want {
		t.Fatalf("export: %q", out)
	}
	// And back: the JSON golden exports to the canonical text form.
	code, out, _ = runCLI(t, "export", goldenDir+"/escape-ok.json")
	if code != 0 || !strings.HasPrefix(out, "6\n0 1\n5\n") {
		t.Fatalf("text export: exit %d %q", code, out)
	}
}

func TestVerifyUsageErrors(t *testing.T) {
	cases := [][]string{
		{"verify", "-mode=bogus", goldenDir + "/cycle4.txt"},
		{"verify", "-mode=escape", goldenDir + "/cycle4.txt"},          // missing -escape
		{"verify", "-mode=escape", "-escape", "x", goldenDir + "/cycle4.txt"},
		{"verify", "-mode=escape", "-escape", "99", goldenDir + "/cycle4.txt"},
		{"verify"},
		{"frobnicate"},
		{},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Fatalf("%v: exit %d, want 2", args, code)
		}
	}
}
