// Command ebda-graph imports, verifies, and exports arbitrary channel
// dependence graphs in the constellation interchange format (or its
// canonical JSON variant), making every verification mode available for
// networks the repository's own generators never built.
//
// Usage:
//
//	ebda-graph import testdata/graphio/escape-ok.txt
//	ebda-graph verify -mode=liveness testdata/graphio/xy3x3-out4.txt
//	ebda-graph verify -mode=escape -escape 4 testdata/graphio/escape-ok.txt
//	ebda-graph export -json testdata/graphio/escape-ok.txt
//
// Exit status: 0 when the command succeeds (and, for verify, the
// property holds), 1 when the property is violated, 2 on usage or
// input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/graphio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "import":
		return cmdImport(args[1:], stdout, stderr)
	case "verify":
		return cmdVerify(args[1:], stdout, stderr)
	case "export":
		return cmdExport(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	}
	fmt.Fprintf(stderr, "ebda-graph: unknown command %q\n", args[0])
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  ebda-graph import FILE                    parse and summarise a graph
  ebda-graph verify -mode=MODE [-escape IDS] [-jobs N] FILE
                                            prove MODE (loop|liveness|escape|subrel)
  ebda-graph export [-json] [-o FILE] FILE  re-emit the canonical form
FILE may be - for stdin; both the text and JSON encodings are accepted.
`)
}

// load reads and parses one graph argument.
func load(path string) (*graphio.Graph, error) {
	var (
		data []byte
		err  error
	)
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return graphio.Parse(data)
}

func cmdImport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("import", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ebda-graph import FILE")
		return 2
	}
	g, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "ebda-graph: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "%d channels, %d edges, %d inputs, %d outputs\n",
		g.Edges.NumNodes(), g.Edges.NumEdges(), len(g.Inputs), len(g.Outputs))
	return 0
}

func cmdVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modeSpec := fs.String("mode", "loop", "property to prove: loop, liveness, escape or subrel")
	escapeSpec := fs.String("escape", "", "escape channel ids for -mode=escape (comma or space separated)")
	jobs := fs.Int("jobs", 0, "worker pool size (0 = all cores)")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ebda-graph verify -mode=MODE [-escape IDS] [-jobs N] FILE")
		return 2
	}
	mode, err := cdg.ParseGraphMode(*modeSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ebda-graph: %v\n", err)
		return 2
	}
	escape, err := parseIDList(*escapeSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ebda-graph: %v\n", err)
		return 2
	}
	if mode == cdg.ModeEscape && len(escape) == 0 {
		fmt.Fprintln(stderr, "ebda-graph: -mode=escape needs -escape IDS")
		return 2
	}
	g, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "ebda-graph: %v\n", err)
		return 2
	}
	for _, v := range escape {
		if v < 0 || v >= g.Edges.NumNodes() {
			fmt.Fprintf(stderr, "ebda-graph: escape channel %d outside [0, %d)\n", v, g.Edges.NumNodes())
			return 2
		}
	}
	rep := cdg.DefaultModeCache.VerifyModeJobs(g.Edges, mode, g.Inputs, g.Outputs, escape, *jobs)
	fmt.Fprintln(stdout, rep.String())
	if rep.OK {
		return 0
	}
	return 1
}

func cmdExport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the canonical JSON variant instead of the text form")
	outPath := fs.String("o", "", "write to this file instead of stdout")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ebda-graph export [-json] [-o FILE] FILE")
		return 2
	}
	g, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "ebda-graph: %v\n", err)
		return 2
	}
	out := g.ExportCDG()
	if *asJSON {
		out = g.ExportJSON()
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			fmt.Fprintf(stderr, "ebda-graph: %v\n", err)
			return 2
		}
		return 0
	}
	if _, err := stdout.Write(out); err != nil {
		fmt.Fprintf(stderr, "ebda-graph: %v\n", err)
		return 2
	}
	return 0
}

// parseIDList accepts "4", "4,5", or "4 5".
func parseIDList(s string) ([]int, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("%q is not a channel id", f)
		}
		out = append(out, v)
	}
	return out, nil
}
