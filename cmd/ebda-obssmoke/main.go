// Command ebda-obssmoke is the observability smoke check behind
// `make obs-smoke`: it builds ebda-verify, runs the same deterministic
// verification twice with -obs-json, and asserts that (a) both dumps
// parse as obs snapshots, (b) the required engine series are present with
// the expected structure, and (c) the two runs are byte-identical once
// timing-dependent fields are canonicalised — the determinism contract
// the -obs-json dump advertises.
//
// Exit status: 0 on success, 1 on assertion failure, 2 on setup errors.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"ebda/internal/obs"
)

// verifyArgs is the deterministic workload: -jobs 1 keeps workspace-pool
// traffic independent of scheduling, and the fixed turn set always
// verifies acyclic on the fixed mesh.
var verifyArgs = []string{
	"-turns", "X+>Y+,X+>Y-,X->Y+,X->Y-",
	"-mesh", "8x8",
	"-jobs", "1",
}

// requiredCounters must appear in every ebda-verify dump; their presence
// pins the cdg instrumentation end to end.
var requiredCounters = []string{
	"ebda_verify_cache_hits_total",
	"ebda_verify_cache_misses_total",
	"ebda_cdg_verifies_total",
	"ebda_cdg_kahn_rounds_total",
	"ebda_workspace_pool_gets_total",
	"ebda_workspace_pool_puts_total",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebda-obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obs-smoke: ok (snapshots parse, required series present, canonical dumps identical)")
}

func run() error {
	dir, err := os.MkdirTemp("", "ebda-obssmoke")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "ebda-verify")
	build := exec.Command("go", "build", "-o", bin, "ebda/cmd/ebda-verify")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fatal(fmt.Errorf("building ebda-verify: %w", err))
	}

	snaps := make([]obs.Snapshot, 2)
	for i := range snaps {
		out := filepath.Join(dir, fmt.Sprintf("run%d.json", i+1))
		cmd := exec.Command(bin, append(append([]string(nil), verifyArgs...), "-obs-json", out)...)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fatal(fmt.Errorf("run %d: %w", i+1, err))
		}
		data, err := os.ReadFile(out)
		if err != nil {
			fatal(err)
		}
		s, err := obs.ParseSnapshot(data)
		if err != nil {
			return fmt.Errorf("run %d: %w", i+1, err)
		}
		snaps[i] = s
	}

	for _, s := range snaps {
		for _, name := range requiredCounters {
			found := false
			for _, c := range s.Counters {
				if c.Name == name {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("required counter %s missing from dump", name)
			}
		}
		if pv, ok := s.Phase("cdg.verify"); !ok || pv.Count != 1 {
			return fmt.Errorf("phase cdg.verify = %+v, want exactly one span", pv)
		}
		if _, ok := s.Histogram(obs.Label("ebda_phase_duration_seconds", "phase", "cdg.verify")); !ok {
			return fmt.Errorf("per-phase duration histogram missing from dump")
		}
		if got := s.Counter("ebda_cdg_verifies_total"); got != 1 {
			return fmt.Errorf("ebda_cdg_verifies_total = %d, want 1", got)
		}
		if got := s.Counter("ebda_verify_cache_misses_total"); got != 1 {
			return fmt.Errorf("ebda_verify_cache_misses_total = %d, want 1 (fresh process)", got)
		}
	}

	var a, b bytes.Buffer
	if err := snaps[0].Canonical().WriteJSON(&a); err != nil {
		fatal(err)
	}
	if err := snaps[1].Canonical().WriteJSON(&b); err != nil {
		fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return fmt.Errorf("canonical snapshots differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s", a.String(), b.String())
	}
	return nil
}

// fatal reports a setup problem (not an assertion failure) and exits 2.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebda-obssmoke: setup:", err)
	os.Exit(2)
}
