// Command ebda-obssmoke is the observability smoke check behind
// `make obs-smoke`: it builds ebda-verify, runs the same deterministic
// verification twice with -obs-json, and asserts that (a) both dumps
// parse as obs snapshots, (b) the required engine series are present with
// the expected structure, and (c) the two runs are byte-identical once
// timing-dependent fields are canonicalised — the determinism contract
// the -obs-json dump advertises.
//
// With -trace it instead checks the tracing determinism contract behind
// `make trace-smoke`: two fresh in-process replicas each serve the same
// fixed sequential request sequence with every trace retained, and the
// canonical text renderings of their flight recorders — span names,
// nesting, attributes, status and provenance, with IDs and timings
// stripped — must be byte-identical.
//
// Exit status: 0 on success, 1 on assertion failure, 2 on setup errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/obs"
	"ebda/internal/obs/obshttp"
	"ebda/internal/obs/trace"
	"ebda/internal/serve"
)

// verifyArgs is the deterministic workload: -jobs 1 keeps workspace-pool
// traffic independent of scheduling, and the fixed turn set always
// verifies acyclic on the fixed mesh.
var verifyArgs = []string{
	"-turns", "X+>Y+,X+>Y-,X->Y+,X->Y-",
	"-mesh", "8x8",
	"-jobs", "1",
}

// requiredCounters must appear in every ebda-verify dump; their presence
// pins the cdg instrumentation end to end.
var requiredCounters = []string{
	"ebda_verify_cache_hits_total",
	"ebda_verify_cache_misses_total",
	"ebda_cdg_verifies_total",
	"ebda_cdg_kahn_rounds_total",
	"ebda_workspace_pool_gets_total",
	"ebda_workspace_pool_puts_total",
}

func main() {
	traceMode := flag.Bool("trace", false, "check trace determinism instead of the -obs-json contract")
	flag.Parse()
	if *traceMode {
		if err := runTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "ebda-obssmoke:", err)
			os.Exit(1)
		}
		fmt.Println("trace-smoke: ok (identical sampled runs render identical canonical span trees)")
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebda-obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obs-smoke: ok (snapshots parse, required series present, canonical dumps identical)")
}

// traceWorkload is the fixed sequential request sequence both replicas
// serve: a cold verify, the identical request again (a cache hit), a
// second design, and one single-link delta against the first.
var traceWorkload = []struct{ path, body string }{
	{"/v1/verify", `{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`},
	{"/v1/verify", `{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`},
	{"/v1/verify", `{"network":{"kind":"torus","sizes":[6,6]},"chain":"PA[X+ Y+] -> PB[X- Y-]"}`},
	{"/v1/verify/delta", `{"base":{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[X+ X- Y-] -> PB[Y+]"},"remove_links":[{"at":[2,3],"dir":"X+"}]}`},
}

// runTrace asserts trace determinism: two identical sampled runs on
// fresh replicas produce byte-identical canonical span trees.
func runTrace() error {
	canonRun := func() (string, error) {
		rec := trace.NewRecorder(64, 16)
		tr := trace.New(trace.Config{
			Fragment:      "smoke",
			SampleEvery:   1,  // retain every request
			SlowThreshold: -1, // the slow lane would double-record slow runs
			Recorder:      rec,
		})
		srv := serve.NewReplica(serve.Config{Workers: 1, Jobs: 1, Tracer: tr}, &cdg.VerifyCache{})
		mux := obshttp.Mux(obs.NewRegistry(), srv.Ready)
		srv.Register(mux)
		ts := httptest.NewServer(mux)
		defer ts.Close()
		for i, req := range traceWorkload {
			resp, err := ts.Client().Post(ts.URL+req.path, "application/json", strings.NewReader(req.body))
			if err != nil {
				return "", fmt.Errorf("request %d: %w", i, err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				return "", fmt.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}
		var b bytes.Buffer
		for _, tj := range trace.Collect(rec.Snapshot()) {
			if err := tj.WriteCanonicalText(&b); err != nil {
				return "", err
			}
		}
		return b.String(), nil
	}
	// The delta request checks out a workspace from the process-global
	// cdg.DefaultDeltaPool: the first run in a process builds it (its
	// trace carries the base verification), later runs reuse it. A
	// warm-up pass primes the pool so the two measured runs see the same
	// pool state and must render identically.
	if _, err := canonRun(); err != nil {
		return err
	}
	a, err := canonRun()
	if err != nil {
		return err
	}
	b, err := canonRun()
	if err != nil {
		return err
	}
	if a == "" {
		return fmt.Errorf("flight recorder captured no traces with SampleEvery=1")
	}
	if a != b {
		return fmt.Errorf("canonical span trees differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	return nil
}

func run() error {
	dir, err := os.MkdirTemp("", "ebda-obssmoke")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "ebda-verify")
	build := exec.Command("go", "build", "-o", bin, "ebda/cmd/ebda-verify")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fatal(fmt.Errorf("building ebda-verify: %w", err))
	}

	snaps := make([]obs.Snapshot, 2)
	for i := range snaps {
		out := filepath.Join(dir, fmt.Sprintf("run%d.json", i+1))
		cmd := exec.Command(bin, append(append([]string(nil), verifyArgs...), "-obs-json", out)...)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fatal(fmt.Errorf("run %d: %w", i+1, err))
		}
		data, err := os.ReadFile(out)
		if err != nil {
			fatal(err)
		}
		s, err := obs.ParseSnapshot(data)
		if err != nil {
			return fmt.Errorf("run %d: %w", i+1, err)
		}
		snaps[i] = s
	}

	for _, s := range snaps {
		for _, name := range requiredCounters {
			found := false
			for _, c := range s.Counters {
				if c.Name == name {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("required counter %s missing from dump", name)
			}
		}
		if pv, ok := s.Phase("cdg.verify"); !ok || pv.Count != 1 {
			return fmt.Errorf("phase cdg.verify = %+v, want exactly one span", pv)
		}
		if _, ok := s.Histogram(obs.Label("ebda_phase_duration_seconds", "phase", "cdg.verify")); !ok {
			return fmt.Errorf("per-phase duration histogram missing from dump")
		}
		if got := s.Counter("ebda_cdg_verifies_total"); got != 1 {
			return fmt.Errorf("ebda_cdg_verifies_total = %d, want 1", got)
		}
		if got := s.Counter("ebda_verify_cache_misses_total"); got != 1 {
			return fmt.Errorf("ebda_verify_cache_misses_total = %d, want 1 (fresh process)", got)
		}
	}

	var a, b bytes.Buffer
	if err := snaps[0].Canonical().WriteJSON(&a); err != nil {
		fatal(err)
	}
	if err := snaps[1].Canonical().WriteJSON(&b); err != nil {
		fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return fmt.Errorf("canonical snapshots differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s", a.String(), b.String())
	}
	return nil
}

// fatal reports a setup problem (not an assertion failure) and exits 2.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebda-obssmoke: setup:", err)
	os.Exit(2)
}
