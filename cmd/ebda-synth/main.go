// Command ebda-synth synthesizes the routing-unit logic of a partition
// chain (Section 5.4): the if-else decision rules over destination offsets
// and input channel, their implementation cost, and optionally compilable
// Go source.
//
// Usage examples:
//
//	ebda-synth -chain "PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]" -name xy
//	ebda-synth -chain "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]" -go
//	ebda-synth -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"ebda/internal/core"
	"ebda/internal/synth"
)

func main() {
	chainSpec := flag.String("chain", "", "partition chain to synthesize")
	name := flag.String("name", "design", "design name")
	dims := flag.Int("dims", 2, "network dimensions")
	emitGo := flag.Bool("go", false, "emit compilable Go source instead of pseudo-code")
	compare := flag.Bool("compare", false, "print the Section 5.4 cost comparison table")
	flag.Parse()

	if *compare {
		printComparison()
		return
	}
	if *chainSpec == "" {
		fmt.Fprintln(os.Stderr, "ebda-synth: -chain or -compare required")
		os.Exit(2)
	}
	chain, err := core.ParseChain(*chainSpec)
	if err != nil {
		fatal(err)
	}
	logic, err := synth.Generate(*name, chain, *dims)
	if err != nil {
		fatal(err)
	}
	if *emitGo {
		fmt.Print(logic.GoSource("route" + *name))
	} else {
		fmt.Print(logic.Pseudo())
	}
	fmt.Printf("\ncost: %d rules, %d comparisons (%d input cases merged)\n",
		logic.Leaves(), logic.Comparisons(), logic.Merged())
}

func printComparison() {
	designs := []struct{ name, spec string }{
		{"xy", "PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]"},
		{"west-first", "PA[X-] -> PB[X+ Y+ Y-]"},
		{"north-last", "PA[X+ X- Y-] -> PB[Y+]"},
		{"negative-first", "PA[X- Y-] -> PB[X+ Y+]"},
		{"fully-adaptive", "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"},
	}
	fmt.Printf("%-16s %6s %6s %12s %8s\n", "design", "turns", "rules", "comparisons", "merged")
	for _, d := range designs {
		chain := core.MustParseChain(d.spec)
		n90, _, _ := chain.Turns90().Counts()
		logic, err := synth.Generate(d.name, chain, 2)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-16s %6d %6d %12d %8d\n",
			d.name, n90, logic.Leaves(), logic.Comparisons(), logic.Merged())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebda-synth:", err)
	os.Exit(2)
}
