// Command ebda-serve runs the verification engine as an HTTP JSON
// service: POST /v1/verify (one design's deadlock-freedom verdict),
// POST /v1/design (the verified Algorithm 1/2 option family for a VC
// budget), POST /v1/batch (up to 64 designs per call), POST
// /v1/verify/delta (incremental re-verification of an edited design)
// and POST /v1/verify/graph (multi-mode verdicts — loop, liveness,
// escape, subrel — over an arbitrary inline channel dependence graph
// in graphio's structured or constellation text form). The same mux
// serves the introspection set — /metrics, /debug/vars, /debug/pprof,
// /debug/traces, /healthz and /readyz — so one port carries both the
// API and its observability.
//
// Every request records a span tree; -trace-sample keeps every Nth one
// in the /debug/traces flight-recorder ring, and anything slower than
// -trace-slow (or answered 5xx) lands in the always-capture slow lane.
// In cluster mode peer hops carry X-Ebda-Trace, so one trace shows
// edge-replica and owner-replica causality; GET /v1/cluster/metrics
// merges every replica's /metrics view into one fleet snapshot.
//
// Admission is a bounded queue in front of a fixed worker pool: a full
// queue answers 429, a draining server answers 503, and a request past
// its deadline answers 504. Identical concurrent requests coalesce onto
// one computation, and verdicts are memoized in the engine's verify
// cache. SIGINT/SIGTERM starts a graceful drain: /readyz flips to 503
// immediately, in-flight verifications finish, then the listener stops.
//
// Cluster mode shards the verify-cache keyspace across replicas with a
// deterministic consistent-hash ring: -name sets this replica's ring
// name and -peers names the others ("r1=host:port,r2=host:port"). A
// replica that does not own a request's cache key answers from its own
// cache, the owner's cache (one GET), or by proxying to the owner
// (-no-forward disables the proxy step). -snapshot-load warm-starts the
// verify cache from a file before serving; -snapshot-save writes the
// cache back after a clean drain, so a rolling restart keeps its
// memoized verdicts.
//
// Usage examples:
//
//	ebda-serve -addr :8423
//	ebda-serve -addr 127.0.0.1:0 -workers 4 -queue 128 -timeout 5s
//	ebda-serve -addr :8423 -name r0 -peers r1=127.0.0.1:8424 -snapshot-load warm.snap -snapshot-save warm.snap
//	curl -s localhost:8423/v1/verify -d '{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ebda/internal/cdg"
	"ebda/internal/cluster"
	"ebda/internal/obs"
	"ebda/internal/obs/obshttp"
	"ebda/internal/serve"
)

// parsePeers parses "name=host:port,name=host:port" into a URL map.
func parsePeers(spec string) (map[string]string, error) {
	peers := make(map[string]string)
	if spec == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("malformed peer %q (want name=host:port)", part)
		}
		if peers[name] != "" {
			return nil, fmt.Errorf("duplicate peer %q", name)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		peers[name] = addr
	}
	return peers, nil
}

// clusterConfig assembles the ring from -name and -peers: the ring
// membership is self plus every named peer, so all replicas given the
// same full member list build the same table.
func clusterConfig(self string, peers map[string]string, noForward bool) (*serve.ClusterConfig, error) {
	members := make([]string, 0, len(peers)+1)
	members = append(members, self)
	for name := range peers {
		if name == self {
			return nil, fmt.Errorf("-peers names this replica (%q)", self)
		}
		members = append(members, name)
	}
	sort.Strings(members)
	ring, err := cluster.New(members)
	if err != nil {
		return nil, err
	}
	cfg := &serve.ClusterConfig{Self: self, Ring: ring, Peers: peers, NoForward: noForward}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8423", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "verification worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default 64)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = default 10s)")
	jobs := flag.Int("jobs", 0, "intra-verification parallelism (0 = default 1)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget after SIGTERM/SIGINT")
	name := flag.String("name", "", "replica name in the cluster ring (empty = single-process mode)")
	peersSpec := flag.String("peers", "", "comma-separated peer replicas, name=host:port each")
	noForward := flag.Bool("no-forward", false, "cluster mode: probe peer caches but never proxy compute")
	snapLoad := flag.String("snapshot-load", "", "warm-start the verify cache from this snapshot file")
	snapSave := flag.String("snapshot-save", "", "write a verify-cache snapshot here after a clean drain")
	traceSample := flag.Int("trace-sample", 0, "retain every Nth request trace in /debug/traces (0 = default 16, negative = slow/error lane only)")
	traceSlow := flag.Duration("trace-slow", 0, "always capture traces at least this slow (0 = default 250ms, negative disables latency capture)")
	flag.Parse()

	cfg := serve.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		Timeout:     *timeout,
		Jobs:        *jobs,
		TraceSample: *traceSample,
		TraceSlow:   *traceSlow,
	}
	if *name != "" {
		peers, err := parsePeers(*peersSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebda-serve: -peers:", err)
			return 2
		}
		cc, err := clusterConfig(*name, peers, *noForward)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebda-serve: cluster:", err)
			return 2
		}
		cfg.Cluster = cc
		fmt.Fprintf(os.Stderr, "ebda-serve: %s joining %s (fingerprint %x)\n",
			*name, cc.Ring, cc.Ring.Fingerprint())
	} else if *peersSpec != "" {
		fmt.Fprintln(os.Stderr, "ebda-serve: -peers requires -name")
		return 2
	}

	// Warm-start before the listener exists: the first request already
	// sees the snapshot's verdicts.
	if *snapLoad != "" {
		f, err := os.Open(*snapLoad)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebda-serve: snapshot-load:", err)
			return 2
		}
		n, err := cdg.DefaultCache.LoadSnapshot(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebda-serve: snapshot-load:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "ebda-serve: warm-started %d cache entries from %s\n", n, *snapLoad)
	}

	srv := serve.New(cfg)
	mux := obshttp.Mux(obs.Default, srv.Ready)
	srv.Register(mux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebda-serve:", err)
		return 2
	}
	httpSrv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	// The listening line is the readiness contract for scripts (the CI
	// soak and the load generator wait for it).
	fmt.Printf("ebda-serve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "ebda-serve:", err)
		return 2
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintln(os.Stderr, "ebda-serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order matters: flip the server to draining first so /readyz
	// answers 503 (load balancers stop routing) while queued work
	// finishes, then stop the HTTP listener once handlers are done.
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ebda-serve: drain:", err)
		httpSrv.Close()
		return 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ebda-serve: shutdown:", err)
		return 1
	}
	// Snapshot only after a clean drain: every admitted verification has
	// finished, so the file captures a consistent verdict set.
	if *snapSave != "" {
		f, err := os.Create(*snapSave)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebda-serve: snapshot-save:", err)
			return 1
		}
		n, err := cdg.DefaultCache.SaveSnapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebda-serve: snapshot-save:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "ebda-serve: saved %d cache entries to %s\n", n, *snapSave)
	}
	fmt.Fprintln(os.Stderr, "ebda-serve: drained cleanly")
	return 0
}
