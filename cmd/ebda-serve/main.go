// Command ebda-serve runs the verification engine as an HTTP JSON
// service: POST /v1/verify (one design's deadlock-freedom verdict),
// POST /v1/design (the verified Algorithm 1/2 option family for a VC
// budget) and POST /v1/batch (up to 64 designs per call). The same mux
// serves the introspection set — /metrics, /debug/vars, /debug/pprof,
// /healthz and /readyz — so one port carries both the API and its
// observability.
//
// Admission is a bounded queue in front of a fixed worker pool: a full
// queue answers 429, a draining server answers 503, and a request past
// its deadline answers 504. Identical concurrent requests coalesce onto
// one computation, and verdicts are memoized in the engine's verify
// cache. SIGINT/SIGTERM starts a graceful drain: /readyz flips to 503
// immediately, in-flight verifications finish, then the listener stops.
//
// Usage examples:
//
//	ebda-serve -addr :8423
//	ebda-serve -addr 127.0.0.1:0 -workers 4 -queue 128 -timeout 5s
//	curl -s localhost:8423/v1/verify -d '{"network":{"kind":"mesh","sizes":[8,8]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ebda/internal/obs"
	"ebda/internal/obs/obshttp"
	"ebda/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8423", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "verification worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default 64)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = default 10s)")
	jobs := flag.Int("jobs", 0, "intra-verification parallelism (0 = default 1)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget after SIGTERM/SIGINT")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Timeout:    *timeout,
		Jobs:       *jobs,
	})
	mux := obshttp.Mux(obs.Default, srv.Ready)
	srv.Register(mux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebda-serve:", err)
		return 2
	}
	httpSrv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	// The listening line is the readiness contract for scripts (the CI
	// soak and the load generator wait for it).
	fmt.Printf("ebda-serve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "ebda-serve:", err)
		return 2
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintln(os.Stderr, "ebda-serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order matters: flip the server to draining first so /readyz
	// answers 503 (load balancers stop routing) while queued work
	// finishes, then stop the HTTP listener once handlers are done.
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ebda-serve: drain:", err)
		httpSrv.Close()
		return 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ebda-serve: shutdown:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "ebda-serve: drained cleanly")
	return 0
}
