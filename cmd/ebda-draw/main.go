// Command ebda-draw renders reproduction artifacts as SVG: turn diagrams
// in the style of the paper's figures, and per-node traffic heatmaps from
// simulator runs.
//
// Usage examples:
//
//	ebda-draw -chain "PA[X+ X- Y-] -> PB[Y+]" -o northlast.svg
//	ebda-draw -chain "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]" -o dyxy.svg
//	ebda-draw -heatmap -alg xy -pattern transpose -mesh 8x8 -o heat.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ebda/internal/core"
	"ebda/internal/routing"
	"ebda/internal/sim"
	"ebda/internal/topology"
	"ebda/internal/traffic"
	"ebda/internal/viz"
)

func main() {
	chainSpec := flag.String("chain", "", "partition chain to draw as a turn diagram")
	out := flag.String("o", "", "output SVG file (stdout when empty)")
	heatmap := flag.Bool("heatmap", false, "render a traffic heatmap instead of a turn diagram")
	algName := flag.String("alg", "xy", "heatmap: routing algorithm (xy, dyxy, odd-even, ...)")
	patternName := flag.String("pattern", "uniform", "heatmap: traffic pattern")
	meshSpec := flag.String("mesh", "8x8", "heatmap: mesh sizes")
	rate := flag.Float64("rate", 0.25, "heatmap: injection rate (flits/node/cycle)")
	flag.Parse()

	var (
		svg string
		err error
	)
	switch {
	case *heatmap:
		svg, err = renderHeatmap(*meshSpec, *algName, *patternName, *rate)
	case *chainSpec != "":
		var chain *core.Chain
		chain, err = core.ParseChain(*chainSpec)
		if err == nil {
			svg, err = viz.TurnDiagram(chain.AllTurns())
		}
	default:
		err = fmt.Errorf("one of -chain or -heatmap is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebda-draw:", err)
		os.Exit(2)
	}
	if *out == "" {
		fmt.Print(svg)
		return
	}
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ebda-draw:", err)
		os.Exit(2)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(svg))
}

func renderHeatmap(meshSpec, algName, patternName string, rate float64) (string, error) {
	sizes, err := parseSizes(meshSpec)
	if err != nil {
		return "", err
	}
	net := topology.NewMesh(sizes...)
	pattern, err := traffic.ByName(patternName)
	if err != nil {
		return "", err
	}
	var (
		alg routing.Algorithm
		vcs []int
	)
	switch algName {
	case "xy":
		alg = routing.NewXY()
	case "odd-even", "oe":
		alg = routing.NewOddEven()
	case "west-first", "wf":
		alg = routing.NewWestFirst()
	case "dyxy", "ebda", "ebda-6ch":
		fc := routing.NewFromChain("ebda-6ch",
			core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), net.Dims())
		alg, vcs = fc, fc.VCs()
	default:
		return "", fmt.Errorf("unknown algorithm %q", algName)
	}
	s := sim.New(sim.Config{
		Net: net, Alg: alg, VCs: vcs,
		InjectionRate: rate, Pattern: pattern, Seed: 1,
		Warmup: 500, Measure: 2000, Drain: 500,
	})
	res := s.Run()
	if res.Deadlocked {
		return "", fmt.Errorf("simulation deadlocked: %s", res)
	}
	return viz.Heatmap(net, s.NodeLoad())
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	sizes := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		sizes[i] = v
	}
	return sizes, nil
}
