// Command ebda-deltabench measures the incremental delta verification
// path against the from-scratch path and writes the delta perf snapshot
// (BENCH_delta.json) that ebda-benchdiff gates across commits.
//
// Each case replays a family of single-element diffs — one removed link
// or one disabled turn per verification — against a retained
// cdg.DeltaWorkspace, and replays the same diffs the pre-delta way
// (derive the perturbed design, verify from scratch through the pooled
// engine). The snapshot records the mean per-diff cost of both paths and
// their ratio, plus the incremental/fallback split so a run that
// silently fell back to full peels is visible. Before timing, every
// distinct diff's delta verdict is checked against the from-scratch
// verdict; a divergence is a correctness bug and exits 1.
//
// Usage:
//
//	ebda-deltabench -out BENCH_delta.json
//	ebda-deltabench -rounds 512 -jobs 2 -out ""
//
// Exit status: 0 on success, 1 when a delta verdict diverges from the
// from-scratch verdict, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/obs"
	"ebda/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchCase is one perturbation family: a diff sequence and the
// from-scratch computation of each diff's verdict.
type benchCase struct {
	name  string
	net   *topology.Network
	vcs   cdg.VCConfig
	ts    *core.TurnSet
	diffs []cdg.Diff
	full  func(cdg.Diff) cdg.Report
}

func run(argv []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ebda-deltabench", flag.ContinueOnError)
	fs.SetOutput(errw)
	outPath := fs.String("out", "BENCH_delta.json", "snapshot path (empty disables)")
	rounds := fs.Int("rounds", 256, "verifications measured per case and path")
	jobs := fs.Int("jobs", 1, "intra-verification parallelism")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(errw, "usage: ebda-deltabench [-rounds 256] [-jobs 1] [-out BENCH_delta.json]")
		return 2
	}
	if *rounds < 1 || *jobs < 0 {
		fmt.Fprintln(errw, "ebda-deltabench: -rounds must be positive and -jobs non-negative")
		return 2
	}

	b := cdg.DeltaBench{
		Kind:        cdg.DeltaBenchKind,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //ebda:allow detlint bench snapshots are stamped with real wall time by design
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Jobs:        *jobs,
		Rounds:      *rounds,
	}
	for _, c := range cases() {
		res, err := measure(c, *rounds, *jobs)
		if err != nil {
			fmt.Fprintln(errw, "ebda-deltabench:", err)
			return 1
		}
		b.Cases = append(b.Cases, res)
		fmt.Fprintf(out, "%-24s full %10.0f ns  delta %8.0f ns  ratio %6.4f  (incremental %d, fallback %d)\n",
			res.Name, res.FullNanos, res.DeltaNanos, res.Ratio, res.Incremental, res.Fallbacks)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(errw, "ebda-deltabench:", err)
			return 2
		}
		if err := b.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(errw, "ebda-deltabench:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(errw, "ebda-deltabench:", err)
			return 2
		}
		fmt.Fprintf(errw, "ebda-deltabench: snapshot written to %s\n", *outPath)
	}
	return 0
}

// cases builds the measured perturbation families: the tentpole claim is
// the 8x8-mesh single-link case; the turn-toggle case keeps the other
// diff family honest.
func cases() []benchCase {
	net := topology.NewMesh(8, 8)
	chain := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	ts := chain.AllTurns()
	vcs := cdg.VCConfigFor(net.Dims(), chain.Channels())

	links := net.Links()
	linkDiffs := make([]cdg.Diff, len(links))
	for i, l := range links {
		linkDiffs[i] = cdg.Diff{RemoveLinks: []topology.Link{l}}
	}
	turns := ts.Turns()
	turnDiffs := make([]cdg.Diff, len(turns))
	for i, t := range turns {
		turnDiffs[i] = cdg.Diff{DisableTurns: []core.Turn{t}}
	}

	return []benchCase{
		{
			name: "mesh8x8/single-link", net: net, vcs: vcs, ts: ts, diffs: linkDiffs,
			full: func(d cdg.Diff) cdg.Report {
				return cdg.VerifyTurnSetJobs(net.WithoutLinks(d.RemoveLinks), vcs, ts, 1)
			},
		},
		{
			name: "mesh8x8/turn-toggle", net: net, vcs: vcs, ts: ts, diffs: turnDiffs,
			full: func(d cdg.Diff) cdg.Report {
				reduced := ts.Clone()
				for _, t := range d.DisableTurns {
					reduced.Remove(t.From, t.To)
				}
				return cdg.VerifyTurnSetJobs(net, vcs, reduced, 1)
			},
		},
	}
}

// measure checks every distinct diff for delta/full agreement, then times
// both paths over the same rotating diff sequence.
func measure(c benchCase, rounds, jobs int) (cdg.DeltaBenchCase, error) {
	dw, err := cdg.NewDeltaWorkspace(c.net, c.vcs, c.ts)
	if err != nil {
		return cdg.DeltaBenchCase{}, fmt.Errorf("%s: %v", c.name, err)
	}
	fulls := make([]cdg.Report, len(c.diffs))
	for i, d := range c.diffs {
		fulls[i] = c.full(d)
		got, err := dw.VerifyDiffJobs(d, jobs)
		if err != nil {
			return cdg.DeltaBenchCase{}, fmt.Errorf("%s diff %d: %v", c.name, i, err)
		}
		if !reportsEqual(got, fulls[i]) {
			return cdg.DeltaBenchCase{}, fmt.Errorf(
				"%s diff %d: delta verdict diverges from from-scratch verdict:\n delta %v\n  full %v",
				c.name, i, got, fulls[i])
		}
	}

	before := counterVals()
	t0 := time.Now() //ebda:allow detlint benchmarks measure wall time by design
	for i := 0; i < rounds; i++ {
		if _, err := dw.VerifyDiffJobs(c.diffs[i%len(c.diffs)], jobs); err != nil {
			return cdg.DeltaBenchCase{}, fmt.Errorf("%s: %v", c.name, err)
		}
	}
	deltaNS := float64(time.Since(t0).Nanoseconds()) / float64(rounds) //ebda:allow detlint benchmarks measure wall time by design
	after := counterVals()

	t0 = time.Now() //ebda:allow detlint benchmarks measure wall time by design
	for i := 0; i < rounds; i++ {
		if rep := c.full(c.diffs[i%len(c.diffs)]); rep.Channels == 0 {
			return cdg.DeltaBenchCase{}, fmt.Errorf("%s: empty from-scratch report", c.name)
		}
	}
	fullNS := float64(time.Since(t0).Nanoseconds()) / float64(rounds) //ebda:allow detlint benchmarks measure wall time by design

	res := cdg.DeltaBenchCase{
		Name:        c.name,
		Network:     c.net.String(),
		FullNanos:   fullNS,
		DeltaNanos:  deltaNS,
		Incremental: after["ebda_cdg_delta_incremental_total"] - before["ebda_cdg_delta_incremental_total"],
		Fallbacks:   after["ebda_cdg_delta_fallbacks_total"] - before["ebda_cdg_delta_fallbacks_total"],
	}
	if fullNS > 0 {
		res.Ratio = deltaNS / fullNS
	}
	return res, nil
}

// reportsEqual compares everything a verdict exposes, including the
// rendered cycle witness.
func reportsEqual(a, b cdg.Report) bool {
	return a.Network == b.Network && a.Channels == b.Channels &&
		a.Edges == b.Edges && a.Acyclic == b.Acyclic &&
		cdg.FormatCycle(a.Cycle) == cdg.FormatCycle(b.Cycle)
}

// counterVals snapshots the default registry's counters by name.
func counterVals() map[string]uint64 {
	s := obs.Default.Snapshot()
	out := make(map[string]uint64, len(s.Counters))
	for _, c := range s.Counters {
		out[c.Name] = c.Value
	}
	return out
}
