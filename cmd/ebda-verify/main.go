// Command ebda-verify checks a user-supplied partition chain on a concrete
// network: Theorem 1/3 validity, channel-dependency-graph acyclicity with
// the full Theorem 1-3 turn set, connectivity, and (optionally) the
// adaptiveness measurement.
//
// Usage examples:
//
//	ebda-verify -chain "PA[X+ X- Y-] -> PB[Y+]" -mesh 8x8
//	ebda-verify -chain "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]" -mesh 8x8 -adaptiveness
//	ebda-verify -chain "PA[X+ Y+] -> PB[X- Y-]" -torus 6x6
//	ebda-verify -turns "X+>Y+,X+>Y-,X->Y+,X->Y-" -mesh 8x8
//	ebda-verify -chain "..." -obs :8080 -obs-json run.json -cachestats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/obs"
	"ebda/internal/obs/obshttp"
	"ebda/internal/topology"
)

func main() {
	chainSpec := flag.String("chain", "", "partition chain, e.g. \"PA[X+ X- Y-] -> PB[Y+]\"")
	chainFile := flag.String("chain-file", "", "JSON file holding the design (see core.Chain's JSON encoding)")
	turnSpec := flag.String("turns", "", "explicit turn list, e.g. \"X+>Y+,X+>Y-\" (alternative to -chain)")
	meshSpec := flag.String("mesh", "", "mesh sizes, e.g. 8x8 or 4x4x4")
	torusSpec := flag.String("torus", "", "torus sizes, e.g. 6x6")
	adapt := flag.Bool("adaptiveness", false, "also measure minimal-path adaptiveness")
	connectivity := flag.Bool("connectivity", true, "check all-pairs reachability (minimal routing)")
	noUI := flag.Bool("no-ui-turns", false, "exclude Theorem-2/3 U- and I-turns")
	dot := flag.String("dot", "", "write the dependency graph in Graphviz format to this file")
	witness := flag.Bool("witness", false, "print the topological channel numbering (the deadlock-freedom witness)")
	jobs := flag.Int("jobs", 0, "worker pool size for graph construction (0 = all cores)")
	obsAddr := flag.String("obs", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	obsJSON := flag.String("obs-json", "", "write the end-of-run metrics snapshot (JSON) to this file")
	cacheStats := flag.Bool("cachestats", false, "print this run's verify-cache counter deltas on exit")
	flag.Parse()

	finishObs, err := obshttp.Setup(*obsAddr, *obsJSON)
	if err != nil {
		fatal(err)
	}
	// Snapshot before the run so -cachestats reports this invocation's
	// traffic alone, not process-lifetime totals.
	obsBefore := obs.Default.Snapshot()

	net, err := buildNet(*meshSpec, *torusSpec)
	if err != nil {
		fatal(err)
	}

	if *chainFile != "" {
		if *chainSpec != "" {
			fatal(fmt.Errorf("use either -chain or -chain-file, not both"))
		}
		data, err := os.ReadFile(*chainFile)
		if err != nil {
			fatal(err)
		}
		var c core.Chain
		if err := json.Unmarshal(data, &c); err != nil {
			fatal(err)
		}
		*chainSpec = c.String()
	}

	var (
		ts  *core.TurnSet
		vcs cdg.VCConfig
	)
	switch {
	case *chainSpec != "" && *turnSpec != "":
		fatal(fmt.Errorf("use either -chain or -turns, not both"))
	case *chainSpec != "":
		chain, err := core.ParseChain(*chainSpec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("chain: %s\n", chain)
		opts := core.DefaultTurnOptions
		if *noUI {
			opts.UITurns = false
		}
		ts = chain.Turns(opts)
		vcs = cdg.VCConfigFor(net.Dims(), chain.Channels())
	case *turnSpec != "":
		turns, err := core.ParseTurnList(*turnSpec)
		if err != nil {
			fatal(err)
		}
		ts = core.NewTurnSet()
		for _, t := range turns {
			ts.Add(t.From, t.To, core.ByTheorem1)
		}
		vcs = cdg.VCConfigFor(net.Dims(), ts.Classes())
	default:
		fatal(fmt.Errorf("one of -chain or -turns is required"))
	}

	n90, nU, nI := ts.Counts()
	fmt.Printf("turn set: %d 90-degree, %d U, %d I\n", n90, nU, nI)
	// The verdict comes from the verification engine's cached entry point,
	// which runs the pooled build + parallel Kahn peel; the report is
	// identical for every jobs value.
	rep := cdg.VerifyTurnSetCachedJobs(net, vcs, ts, *jobs)
	fmt.Println(rep)
	ok := rep.Acyclic
	if *dot != "" || *witness {
		// Diagnostics need the concrete graph; the verdict above still
		// comes from the engine, this build only renders it.
		g := cdg.BuildFromTurnSetJobs(net, vcs, ts, *jobs)
		if *dot != "" {
			if err := os.WriteFile(*dot, []byte(g.DOT("ebda")), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("dependency graph written to %s\n", *dot)
		}
		if *witness {
			order, err := g.TopoOrder()
			if err != nil {
				fmt.Println("no witness:", err)
			} else {
				fmt.Println("deadlock-freedom witness (ascending channel numbering):")
				for i, ch := range order {
					fmt.Printf("  %4d: %s\n", i+1, ch)
				}
			}
		}
	}
	if *connectivity {
		conn := cdg.Connectivity(net, vcs, ts, true)
		fmt.Printf("connectivity: %s\n", conn)
		ok = ok && conn.Connected()
	}
	if *adapt {
		ad, err := cdg.Adaptiveness(net, vcs, ts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", ad)
	}
	if *cacheStats {
		printCacheDelta(obsBefore)
	}
	if err := finishObs(); err != nil {
		fatal(err)
	}
	if !ok {
		os.Exit(1)
	}
}

// printCacheDelta renders the verify-cache series recorded since before,
// through the shared snapshot renderer, plus the derived hit rate.
func printCacheDelta(before obs.Snapshot) {
	delta := obs.Default.Snapshot().Sub(before).Filter("ebda_verify_cache")
	fmt.Println("verify cache (this run):")
	if err := delta.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	hits := delta.Counter("ebda_verify_cache_hits_total")
	misses := delta.Counter("ebda_verify_cache_misses_total")
	if hits+misses > 0 {
		fmt.Printf("  hit rate: %.1f%% (%d/%d)\n",
			float64(hits)/float64(hits+misses)*100, hits, hits+misses)
	}
}

func buildNet(mesh, torus string) (*topology.Network, error) {
	switch {
	case mesh != "" && torus != "":
		return nil, fmt.Errorf("use either -mesh or -torus, not both")
	case mesh != "":
		sizes, err := parseSizes(mesh)
		if err != nil {
			return nil, err
		}
		return topology.NewMesh(sizes...), nil
	case torus != "":
		sizes, err := parseSizes(torus)
		if err != nil {
			return nil, err
		}
		return topology.NewTorus(sizes...), nil
	default:
		return topology.NewMesh(8, 8), nil
	}
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebda-verify:", err)
	os.Exit(2)
}
