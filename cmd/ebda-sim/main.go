// Command ebda-sim sweeps injection rates through the wormhole simulator
// for one or more routing algorithms and prints latency/throughput series
// (the extension experiment X01).
//
// Usage examples:
//
//	ebda-sim -mesh 8x8 -algs xy,dyxy,duato -rates 0.05:0.40:0.05
//	ebda-sim -mesh 6x6 -algs odd-even -pattern transpose -packet 8
//	ebda-sim -mesh 8x8 -algs unrestricted -rates 0.4:0.6:0.1   (deadlocks)
//	ebda-sim -mesh 8x8 -algs dyxy -seeds 8 -obs :8080        (live /metrics)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	// Linked for its metric registrations: a live -obs endpoint shows the
	// whole engine's series (verify cache, workspace pool, phases) even
	// though a pure sweep only drives the simulator.
	_ "ebda/internal/cdg"

	"ebda/internal/core"
	"ebda/internal/duato"
	"ebda/internal/obs/obshttp"
	"ebda/internal/routing"
	"ebda/internal/sim"
	"ebda/internal/topology"
	"ebda/internal/traffic"
)

func main() {
	meshSpec := flag.String("mesh", "8x8", "mesh sizes, e.g. 8x8")
	algNames := flag.String("algs", "xy,dyxy", "comma-separated algorithms: xy, yx, west-first, north-last, negative-first, odd-even, dyxy, duato, unrestricted")
	rateSpec := flag.String("rates", "0.05:0.40:0.05", "rate sweep lo:hi:step (flits/node/cycle)")
	patternName := flag.String("pattern", "uniform", "traffic pattern: uniform, transpose, bit-complement, neighbor, hotspot")
	packetLen := flag.Int("packet", 5, "packet length in flits")
	bufDepth := flag.Int("buffers", 4, "per-VC buffer depth in flits")
	seed := flag.Int64("seed", 1, "random seed")
	seeds := flag.Int("seeds", 1, "number of independent seeds to average over")
	traceFile := flag.String("trace", "", "CSV trace file (cycle,srcX,srcY,dstX,dstY[,len]); replaces -pattern/-rates")
	heatmap := flag.Bool("heatmap", false, "print a per-node traffic heatmap after each run (2D meshes)")
	warm := flag.Int("warmup", 1000, "warmup cycles")
	meas := flag.Int("measure", 4000, "measurement cycles")
	drain := flag.Int("drain", 2000, "drain cycles")
	obsAddr := flag.String("obs", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	obsJSON := flag.String("obs-json", "", "write the end-of-run metrics snapshot (JSON) to this file")
	flag.Parse()

	finishObs, err := obshttp.Setup(*obsAddr, *obsJSON)
	if err != nil {
		fatal(err)
	}

	sizes, err := parseSizes(*meshSpec)
	if err != nil {
		fatal(err)
	}
	net := topology.NewMesh(sizes...)
	pattern, err := traffic.ByName(*patternName)
	if err != nil {
		fatal(err)
	}
	rates, err := parseRates(*rateSpec)
	if err != nil {
		fatal(err)
	}
	var trace []traffic.TraceEntry
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		trace, err = traffic.ParseTrace(f, net)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rates = []float64{0} // one run, rate ignored
		fmt.Printf("# trace %s: %d packets\n", *traceFile, len(trace))
	}

	fmt.Printf("# %s, pattern %s, packet %d flits, buffers %d\n",
		net, pattern.Name(), *packetLen, *bufDepth)
	fmt.Printf("%-16s %-6s %10s %10s %12s %s\n",
		"algorithm", "rate", "latency", "p99", "throughput", "status")
	for _, name := range strings.Split(*algNames, ",") {
		alg, vcs, err := buildAlg(strings.TrimSpace(name), net)
		if err != nil {
			fatal(err)
		}
		for _, rate := range rates {
			cfg := sim.Config{
				Net: net, Alg: alg, VCs: vcs,
				InjectionRate: rate, Pattern: pattern,
				PacketLen: *packetLen, BufferDepth: *bufDepth,
				Seed:   *seed,
				Warmup: *warm, Measure: *meas, Drain: *drain,
				Trace: trace,
			}
			if *heatmap {
				s := sim.New(cfg)
				res := s.Run()
				fmt.Printf("%-16s %-6.3f %10.1f %10d %12.4f\n",
					alg.Name(), rate, res.AvgLatency, res.P99Latency, res.Throughput)
				printHeatmap(net, s.NodeLoad())
				continue
			}
			if *seeds > 1 {
				rep := sim.RunSeeds(cfg, *seeds)
				status := "ok"
				if rep.Deadlocks > 0 {
					status = fmt.Sprintf("DEADLOCK in %d/%d runs", rep.Deadlocks, rep.Runs)
				}
				fmt.Printf("%-16s %-6.3f %7.1f±%-5.1f %10s %7.4f±%-6.4f %s\n",
					alg.Name(), rate, rep.Latency.Mean(), rep.Latency.Std(),
					"-", rep.Throughput.Mean(), rep.Throughput.Std(), status)
				continue
			}
			res := sim.New(cfg).Run()
			status := "ok"
			if res.Deadlocked {
				status = fmt.Sprintf("DEADLOCK (%d flits stuck)", res.StuckFlits)
			}
			fmt.Printf("%-16s %-6.3f %10.1f %10d %12.4f %s\n",
				alg.Name(), rate, res.AvgLatency, res.P99Latency, res.Throughput, status)
		}
	}
	if err := finishObs(); err != nil {
		fatal(err)
	}
}

// printHeatmap renders per-node outbound traffic as a shaded 2D grid
// (rows printed north to south).
func printHeatmap(net *topology.Network, loads []int) {
	if net.Dims() != 2 {
		fmt.Println("  (heatmap requires a 2D mesh)")
		return
	}
	max := 1
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	shades := []rune(" .:-=+*#%@")
	w, h := net.Sizes()[0], net.Sizes()[1]
	for y := h - 1; y >= 0; y-- {
		fmt.Print("  ")
		for x := 0; x < w; x++ {
			l := loads[net.ID(topology.Coord{x, y})]
			idx := l * (len(shades) - 1) / max
			fmt.Printf("%c%c", shades[idx], shades[idx])
		}
		fmt.Println()
	}
	fmt.Printf("  (darkest = %d flits/node during measurement)\n", max)
}

func buildAlg(name string, net *topology.Network) (routing.Algorithm, []int, error) {
	switch name {
	case "xy":
		return routing.NewXY(), nil, nil
	case "yx":
		return routing.NewYX(), nil, nil
	case "west-first", "wf":
		return routing.NewWestFirst(), nil, nil
	case "north-last", "nl":
		return routing.NewNorthLast(), nil, nil
	case "negative-first", "nf":
		return routing.NewNegativeFirst(), nil, nil
	case "odd-even", "oe":
		return routing.NewOddEven(), nil, nil
	case "dyxy", "ebda", "ebda-6ch":
		chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
		alg := routing.NewFromChain("ebda-6ch", chain, net.Dims())
		return alg, alg.VCs(), nil
	case "duato":
		d := duato.New()
		return d, d.VCsPerDim(net), nil
	case "planar", "planar-adaptive":
		p := routing.NewPlanarAdaptive()
		return p, p.VCsPerDim(net), nil
	case "unrestricted":
		return routing.NewUnrestricted(), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("rates must be lo:hi:step, got %q", s)
	}
	var v [3]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad rate %q", p)
		}
		v[i] = f
	}
	var out []float64
	for r := v[0]; r <= v[1]+1e-9; r += v[2] {
		out = append(out, r)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebda-sim:", err)
	os.Exit(2)
}
