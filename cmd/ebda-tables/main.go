// Command ebda-tables regenerates Tables 1-5 of the EbDa paper, each
// verified through the channel dependency graph as it is printed.
//
// Usage:
//
//	ebda-tables [-table N]    (N in 1..5; default: all)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/paper"
	"ebda/internal/topology"
)

func main() {
	table := flag.Int("table", 0, "table number (1-5); 0 prints all")
	flag.Parse()
	if *table < 0 || *table > 5 {
		fmt.Fprintln(os.Stderr, "table must be 1..5")
		os.Exit(2)
	}
	tables := []int{1, 2, 3, 4, 5}
	if *table != 0 {
		tables = []int{*table}
	}
	if err := render(os.Stdout, tables); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// render writes the requested tables to w. All output flows through w so
// the emitters are testable — the regression tests render twice and
// require byte-identical output.
func render(w io.Writer, tables []int) error {
	for _, n := range tables {
		switch n {
		case 1, 2, 3:
			if err := renderChainTable(w, n); err != nil {
				return err
			}
		case 4:
			renderTable4(w)
		case 5:
			renderTable5(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func renderChainTable(w io.Writer, n int) error {
	var (
		chains []*core.Chain
		title  string
		err    error
	)
	switch n {
	case 1:
		title = "Table 1: Partitioning options leading to maximum adaptiveness"
		chains, err = paper.Table1()
	case 2:
		title = "Table 2: Partitioning options leading to some degrees of adaptiveness"
		chains = paper.Table2()
	case 3:
		title = "Table 3: Partitioning options leading to deterministic routing"
		chains, err = paper.Table3()
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(w, title)
	mesh := topology.NewMesh(5, 5)
	cols := 3
	if n == 2 {
		cols = 2
	}
	for i, c := range chains {
		rep := cdg.VerifyChain(mesh, c)
		status := "ok"
		if !rep.Acyclic {
			status = "CYCLIC"
		}
		fmt.Fprintf(w, "  %-36s [%s]", arrowOnly(c), status)
		if (i+1)%cols == 0 {
			fmt.Fprintln(w)
		}
	}
	if len(chains)%cols != 0 {
		fmt.Fprintln(w)
	}
	return nil
}

// arrowOnly renders a chain without partition names, as the paper's
// tables do: "X+X-Y+ -> Y-".
func arrowOnly(c *core.Chain) string {
	out := ""
	for i, p := range c.Partitions() {
		if i > 0 {
			out += " -> "
		}
		for _, cls := range p.Channels() {
			out += cls.Plain()
		}
	}
	return out
}

func renderTable4(w io.Writer) {
	fmt.Fprintln(w, "Table 4: Allowable turns in Odd-Even")
	chain := paper.Table4Chain()
	fmt.Fprintf(w, "  partitioning: %s\n", chain.PlainString())
	for _, row := range paper.Table4Expected() {
		fmt.Fprintf(w, "  %-14s 90-degree: %-22s U/I: %s\n", row.Label, row.Turns90, row.UITurns)
		if row.Notes != "" {
			fmt.Fprintf(w, "  %14s note: %s\n", "", row.Notes)
		}
	}
	mesh := topology.NewMesh(6, 6)
	rep := cdg.VerifyChain(mesh, chain)
	conn := cdg.Connectivity(mesh, nil, chain.AllTurns(), true)
	fmt.Fprintf(w, "  verification: %s; %s\n", rep, conn)
}

func renderTable5(w io.Writer) {
	fmt.Fprintln(w, "Table 5: Allowable turns in the partially connected 3D design")
	chain := paper.Table5Chain()
	fmt.Fprintf(w, "  partitioning: %s\n", chain)
	vcs := []int{1, 2, 1}
	parts := chain.Partitions()
	rows := paper.Table5Expected()
	printRow := func(label string, turns []core.Turn) {
		strs := make([]string, len(turns))
		for i, t := range turns {
			strs[i] = paper.FormatTurnForDesign(t, vcs)
		}
		fmt.Fprintf(w, "  %-14s %s\n", label, joinWords(strs))
	}
	printRow(rows[0].Label, parts[0].InnerTurns(false).Turns())
	printRow(rows[1].Label, parts[1].InnerTurns(false).Turns())
	var t3 []core.Turn
	for _, t := range chain.AllTurns().BySource(core.ByTheorem3) {
		if t.Kind() == core.Turn90 {
			t3 = append(t3, t)
		}
	}
	printRow(rows[2].Label, t3)
	net := topology.NewPartialMesh3D(4, 4, 3, [][2]int{{0, 0}, {3, 3}})
	cfg := cdg.VCConfigFor(3, chain.Channels())
	rep := cdg.VerifyTurnSet(net, cfg, chain.AllTurns())
	fmt.Fprintf(w, "  verification on %s: %s\n", net, rep)
	fmt.Fprintf(w, "  baseline Elevator-First turns (16): %s\n", paper.ElevatorFirstTurns)
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += ", "
		}
		out += w
	}
	return out
}
