package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRenderDeterministic renders every table twice in the same process
// and requires byte-identical output. Go randomizes map iteration per
// range statement, so any map-order leak in the emitters (or in the
// paper/core layers they call) shows up as a diff here.
func TestRenderDeterministic(t *testing.T) {
	tables := []int{1, 2, 3, 4, 5}
	var first, second bytes.Buffer
	if err := render(&first, tables); err != nil {
		t.Fatalf("first render: %v", err)
	}
	if err := render(&second, tables); err != nil {
		t.Fatalf("second render: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("table output is nondeterministic:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
	if first.Len() == 0 {
		t.Fatal("render produced no output")
	}
}

// TestRenderContent spot-checks that each table actually rendered with
// its verification verdict.
func TestRenderContent(t *testing.T) {
	var buf bytes.Buffer
	if err := render(&buf, []int{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1:", "Table 2:", "Table 3:", "Table 4:", "Table 5:",
		"[ok]", "verification:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "[CYCLIC]") {
		t.Error("a paper table verified as cyclic")
	}
}
