// Command ebda-benchdiff compares two perf snapshots and fails when they
// regress. It understands the repo's snapshot families and dispatches on
// the "kind" field: engine snapshots (BENCH_verify.json, written by
// `make bench-json`, no kind), serving snapshots (BENCH_serve.json,
// written by ebda-loadgen, kind "serve") and incremental-verification
// snapshots (BENCH_delta.json, written by ebda-deltabench, kind
// "delta"). Mixing kinds is a usage error.
//
// Engine diff: experiments are matched by ID and CDG cases by network
// name; entries present in only one snapshot are reported but never fail
// the diff. A wall-time regression is a ratio above -threshold (default
// 1.20, i.e. >20% slower) on an entry whose baseline wall time is at
// least -minwall seconds — sub-millisecond entries are timer noise, not
// signal. A hit-rate regression is a per-experiment verify-cache hit
// rate that dropped by more than -hitrate-drop (default 0.10, i.e. 10
// percentage points) between snapshots, on experiments with cache
// traffic in both.
//
// Serve diff: p99 latency may grow by at most -p99-grow (default 1.25,
// i.e. 25%), throughput may drop by at most -tput-drop (default 0.25),
// and the 5xx count may not increase. The latency check is skipped when
// the baseline p99 is below -minp99 milliseconds — micro-benchmark noise,
// not signal.
//
// Delta diff: cases are matched by name and compared on their
// delta/full cost ratio, which self-normalizes away machine speed. The
// gates are absolute, because delta costs are microsecond-scale and
// their run-to-run jitter makes relative comparisons meaningless:
// single-link cases must stay under the -delta-ratio gate (default
// 0.05: incremental re-verification at most 5% of a from-scratch
// verification, the tentpole acceptance criterion), no case's
// incremental path may cost more than its full path (ratio above 1),
// and a case whose diffs all fell back to full peels measured nothing
// and fails outright. The relative grow column is informational only.
//
// Cluster diff (BENCH_cluster.json, written by ebda-loadgen -cluster,
// kind "cluster"): the scaling factor is gated absolutely — the new
// snapshot's scaling_x must reach -cluster-scaling (default 3.0, the
// 4-replica acceptance floor; scaled by replicas/4 for other sizes) —
// because scaling is already a self-normalized ratio of walls from one
// run. The routing paths must have been exercised (peer_hits and
// forwards both non-zero), the 5xx count may not increase, and the
// aggregate p99 / aggregate throughput move under the same relative
// gates as the serve diff.
//
// Every ratio-style check is guarded against zero-valued baselines: a
// baseline entry whose wall time, hit rate, throughput or cost ratio is
// zero carries no signal (quick-mode BENCH_verify.json rows have
// cache_hit_rate 0, a degenerate serve snapshot has throughput 0), so
// the comparison reports "skip (zero baseline)" instead of dividing by
// zero or minting a spurious ok/regression.
//
// Usage:
//
//	ebda-benchdiff old.json new.json
//	ebda-benchdiff -threshold 1.10 -minwall 0.01 -hitrate-drop 0.05 old.json new.json
//	ebda-benchdiff -p99-grow 1.10 -tput-drop 0.10 BENCH_serve.old.json BENCH_serve.json
//
// Exit status: 0 when no regression, 1 on regression, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/experiments"
	"ebda/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, performs the diff and
// returns the process exit status (0 clean, 1 regression, 2 usage/load
// error).
func run(argv []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ebda-benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	threshold := fs.Float64("threshold", 1.20, "fail when new/old wall-time ratio exceeds this")
	minWall := fs.Float64("minwall", 0.005, "ignore entries whose baseline wall time is below this many seconds")
	hitRateDrop := fs.Float64("hitrate-drop", 0.10, "fail when a per-experiment cache hit rate drops by more than this fraction")
	p99Grow := fs.Float64("p99-grow", 1.25, "serve snapshots: fail when new/old p99 latency ratio exceeds this")
	tputDrop := fs.Float64("tput-drop", 0.25, "serve snapshots: fail when throughput drops by more than this fraction")
	minP99 := fs.Float64("minp99", 1.0, "serve snapshots: ignore the latency check when the baseline p99 is below this many ms")
	deltaRatio := fs.Float64("delta-ratio", 0.05, "delta snapshots: fail when a single-link case's delta/full ratio exceeds this")
	clusterScaling := fs.Float64("cluster-scaling", 3.0, "cluster snapshots: fail when a 4-replica run's scaling_x is below this (scaled by replicas/4)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errw, "usage: ebda-benchdiff [-threshold 1.2] [-minwall 0.005] [-p99-grow 1.25] [-tput-drop 0.25] OLD.json NEW.json")
		return 2
	}
	oldRaw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}
	newRaw, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}
	oldKind, err := kindOf(fs.Arg(0), oldRaw)
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}
	newKind, err := kindOf(fs.Arg(1), newRaw)
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}
	if oldKind != newKind {
		fmt.Fprintf(errw, "ebda-benchdiff: snapshot kinds differ (%s is %s, %s is %s)\n",
			fs.Arg(0), orEngine(oldKind), fs.Arg(1), orEngine(newKind))
		return 2
	}
	if oldKind == serve.BenchKind {
		return diffServe(out, errw, fs.Arg(0), fs.Arg(1), oldRaw, newRaw, *p99Grow, *tputDrop, *minP99)
	}
	if oldKind == cdg.DeltaBenchKind {
		return diffDelta(out, errw, fs.Arg(0), fs.Arg(1), oldRaw, newRaw, *deltaRatio)
	}
	if oldKind == serve.ClusterBenchKind {
		return diffCluster(out, errw, fs.Arg(0), fs.Arg(1), oldRaw, newRaw, *clusterScaling, *p99Grow, *tputDrop, *minP99)
	}
	if oldKind != "" {
		fmt.Fprintf(errw, "ebda-benchdiff: unknown snapshot kind %q\n", oldKind)
		return 2
	}

	oldB, err := load(fs.Arg(0), oldRaw)
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}
	newB, err := load(fs.Arg(1), newRaw)
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}

	fmt.Fprintf(out, "old: %s (%s, jobs=%d, gomaxprocs=%d)\n",
		fs.Arg(0), oldB.GoVersion, oldB.Jobs, oldB.GoMaxProcs)
	fmt.Fprintf(out, "new: %s (%s, jobs=%d, gomaxprocs=%d)\n",
		fs.Arg(1), newB.GoVersion, newB.Jobs, newB.GoMaxProcs)
	if oldB.Quick != newB.Quick {
		fmt.Fprintln(out, "warning: snapshots differ in -quick; wall times are not comparable")
	}

	regressions := 0
	regressions += diffRows(out, expRows(oldB), expRows(newB), *threshold, *minWall)
	regressions += diffRows(out, cdgRows(oldB), cdgRows(newB), *threshold, *minWall)
	regressions += diffHitRates(out, oldB, newB, *hitRateDrop)
	if regressions > 0 {
		fmt.Fprintf(out, "\n%d regression(s)\n", regressions)
		return 1
	}
	fmt.Fprintln(out, "\nno wall-time or cache hit-rate regressions")
	return 0
}

// row is one comparable measurement.
type row struct {
	name string
	wall float64
}

func expRows(b experiments.Bench) []row {
	out := make([]row, 0, len(b.Experiments))
	for _, e := range b.Experiments {
		out = append(out, row{name: e.ID, wall: e.WallSeconds})
	}
	return out
}

func cdgRows(b experiments.Bench) []row {
	out := make([]row, 0, len(b.CDG))
	for _, c := range b.CDG {
		out = append(out, row{name: "cdg " + c.Network, wall: c.WallSeconds})
	}
	return out
}

// diffRows prints the comparison of matching rows (by name) and returns
// the number of regressions.
func diffRows(w io.Writer, oldRows, newRows []row, threshold, minWall float64) int {
	byName := make(map[string]row, len(oldRows))
	for _, r := range oldRows {
		byName[r.name] = r
	}
	regressions := 0
	for _, n := range newRows {
		o, ok := byName[n.name]
		if !ok {
			fmt.Fprintf(w, "  %-28s only in new snapshot\n", n.name)
			continue
		}
		delete(byName, n.name)
		ratio := 0.0
		if o.wall > 0 {
			ratio = n.wall / o.wall
		}
		status := "ok"
		switch {
		case o.wall == 0:
			status = "skip (zero baseline)"
		case o.wall < minWall:
			status = "skip (below minwall)"
		case ratio > threshold:
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-28s %10.4fs -> %10.4fs  (%5.2fx)  %s\n",
			n.name, o.wall, n.wall, ratio, status)
	}
	for _, o := range oldRows {
		if _, ok := byName[o.name]; ok {
			fmt.Fprintf(w, "  %-28s only in old snapshot\n", o.name)
		}
	}
	return regressions
}

// cacheRow is one experiment's verify-cache traffic.
type cacheRow struct {
	name         string
	hits, misses uint64
}

func (r cacheRow) rate() float64 {
	if r.hits+r.misses == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.hits+r.misses)
}

func cacheRows(b experiments.Bench) []cacheRow {
	out := make([]cacheRow, 0, len(b.Experiments))
	for _, e := range b.Experiments {
		out = append(out, cacheRow{name: e.ID, hits: e.CacheHits, misses: e.CacheMisses})
	}
	return out
}

// diffHitRates compares per-experiment verify-cache hit rates and returns
// the number of regressions (rate dropped by more than maxDrop). Only
// experiments with cache traffic in both snapshots are compared — an
// experiment that stopped issuing cached verifications entirely shows up
// in the wall-time table, not here.
func diffHitRates(w io.Writer, oldB, newB experiments.Bench, maxDrop float64) int {
	byName := make(map[string]cacheRow)
	for _, r := range cacheRows(oldB) {
		byName[r.name] = r
	}
	regressions := 0
	printedHeader := false
	for _, n := range cacheRows(newB) {
		o, ok := byName[n.name]
		if !ok || o.hits+o.misses == 0 || n.hits+n.misses == 0 {
			continue
		}
		drop := o.rate() - n.rate()
		status := "ok"
		switch {
		case o.rate() == 0:
			// A baseline that never hit (quick-mode rows have
			// cache_hit_rate 0) has no rate to regress from.
			status = "skip (zero baseline)"
		case drop > maxDrop:
			status = "REGRESSION"
			regressions++
		}
		if !printedHeader {
			fmt.Fprintln(w, "verify-cache hit rates:")
			printedHeader = true
		}
		fmt.Fprintf(w, "  %-28s %5.1f%% (%d/%d) -> %5.1f%% (%d/%d)  %s\n",
			n.name, o.rate()*100, o.hits, o.hits+o.misses,
			n.rate()*100, n.hits, n.hits+n.misses, status)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "  %d hit-rate drop(s) beyond %.0f points\n", regressions, maxDrop*100)
	}
	return regressions
}

func load(path string, data []byte) (experiments.Bench, error) {
	var b experiments.Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// kindOf probes a snapshot's "kind" field: empty for engine snapshots,
// "serve" for serving-layer snapshots.
func kindOf(path string, data []byte) (string, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return probe.Kind, nil
}

// orEngine names a kind for the mixed-kinds error message.
func orEngine(kind string) string {
	if kind == "" {
		return "an engine snapshot"
	}
	return "a " + kind + " snapshot"
}

// diffDelta compares two incremental-verification snapshots. Cases match
// by name; each is judged on its delta/full cost ratio (machine-speed
// independent): relative growth beyond threshold regresses, single-link
// cases are additionally held to the absolute deltaRatio gate, and a
// case with no incremental verifications measured nothing.
func diffDelta(out, errw io.Writer, oldPath, newPath string, oldRaw, newRaw []byte, deltaRatio float64) int {
	oldB, err := cdg.ReadDeltaBench(oldRaw)
	if err != nil {
		fmt.Fprintf(errw, "ebda-benchdiff: %s: %v\n", oldPath, err)
		return 2
	}
	newB, err := cdg.ReadDeltaBench(newRaw)
	if err != nil {
		fmt.Fprintf(errw, "ebda-benchdiff: %s: %v\n", newPath, err)
		return 2
	}
	fmt.Fprintf(out, "old: %s (%s, jobs=%d, rounds=%d)\n", oldPath, oldB.GoVersion, oldB.Jobs, oldB.Rounds)
	fmt.Fprintf(out, "new: %s (%s, jobs=%d, rounds=%d)\n", newPath, newB.GoVersion, newB.Jobs, newB.Rounds)

	byName := make(map[string]cdg.DeltaBenchCase, len(oldB.Cases))
	for _, c := range oldB.Cases {
		byName[c.Name] = c
	}
	regressions := 0
	for _, n := range newB.Cases {
		o, ok := byName[n.Name]
		if !ok {
			fmt.Fprintf(out, "  %-24s only in new snapshot\n", n.Name)
			continue
		}
		delete(byName, n.Name)
		grow := 0.0
		if o.Ratio > 0 {
			grow = n.Ratio / o.Ratio
		}
		// Delta costs are microsecond-scale, so the delta/full ratio
		// jitters by whole multiples between runs on a loaded machine;
		// the grow column is printed for humans but never gated. The
		// machine-independent invariants are absolute: single-link
		// re-verifies stay under the -delta-ratio ceiling, and no
		// incremental re-verify may cost more than a from-scratch one.
		status := "ok"
		switch {
		case n.Incremental == 0:
			status = "REGRESSION (no incremental verifications measured)"
			regressions++
		case strings.Contains(n.Name, "single-link") && n.Ratio > deltaRatio:
			status = fmt.Sprintf("REGRESSION (ratio above %.2f gate)", deltaRatio)
			regressions++
		case n.Ratio > 1:
			status = "REGRESSION (incremental slower than full verify)"
			regressions++
		case o.Ratio == 0:
			status = "skip (zero baseline)"
		}
		fmt.Fprintf(out, "  %-24s ratio %6.4f -> %6.4f  (%5.2fx)  delta %8.0f -> %8.0f ns  %s\n",
			n.Name, o.Ratio, n.Ratio, grow, o.DeltaNanos, n.DeltaNanos, status)
	}
	for _, o := range oldB.Cases {
		if _, ok := byName[o.Name]; ok {
			fmt.Fprintf(out, "  %-24s only in old snapshot\n", o.Name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(out, "\n%d regression(s)\n", regressions)
		return 1
	}
	fmt.Fprintln(out, "\nno incremental-verification regressions")
	return 0
}

// diffCluster compares two cluster snapshots. The scaling gate is
// absolute and judged on the new snapshot alone: scaling_x is already a
// within-run ratio of walls, so it needs no baseline to be meaningful.
// The relative latency/throughput comparisons carry the serve diff's
// zero-baseline and minp99 skip guards.
func diffCluster(out, errw io.Writer, oldPath, newPath string, oldRaw, newRaw []byte, scalingGate, p99Grow, tputDrop, minP99 float64) int {
	oldB, err := serve.ReadClusterBench(oldRaw)
	if err != nil {
		fmt.Fprintf(errw, "ebda-benchdiff: %s: %v\n", oldPath, err)
		return 2
	}
	newB, err := serve.ReadClusterBench(newRaw)
	if err != nil {
		fmt.Fprintf(errw, "ebda-benchdiff: %s: %v\n", newPath, err)
		return 2
	}
	fmt.Fprintf(out, "old: %s (%s, %d replicas, %d requests, seed %d)\n",
		oldPath, oldB.GoVersion, oldB.Replicas, oldB.Requests, oldB.Seed)
	fmt.Fprintf(out, "new: %s (%s, %d replicas, %d requests, seed %d)\n",
		newPath, newB.GoVersion, newB.Replicas, newB.Requests, newB.Seed)
	if oldB.Seed != newB.Seed || oldB.Requests != newB.Requests || oldB.Replicas != newB.Replicas {
		fmt.Fprintln(out, "warning: snapshots ran different workloads; numbers are weak evidence")
	}

	regressions := 0
	// The acceptance floor is stated for 4 replicas; other sizes are
	// held to the same per-replica efficiency.
	floor := scalingGate
	if newB.Replicas != 4 && newB.Replicas > 0 {
		floor = scalingGate * float64(newB.Replicas) / 4
	}
	status := "ok"
	switch {
	case newB.Replicas == 0:
		status = "skip (zero baseline)"
	case newB.ScalingX < floor:
		status = fmt.Sprintf("REGRESSION (below %.2fx floor)", floor)
		regressions++
	}
	fmt.Fprintf(out, "  %-14s %9.2fx  -> %9.2fx   %s\n", "scaling", oldB.ScalingX, newB.ScalingX, status)

	status = "ok"
	if newB.PeerHits == 0 || newB.Forwards == 0 {
		status = "REGRESSION (routing path not exercised)"
		regressions++
	}
	fmt.Fprintf(out, "  %-14s %6d/%4d -> %6d/%4d  %s\n",
		"peer/forward", oldB.PeerHits, oldB.Forwards, newB.PeerHits, newB.Forwards, status)

	p99Ratio := 0.0
	if oldB.AggP99Millis > 0 {
		p99Ratio = newB.AggP99Millis / oldB.AggP99Millis
	}
	status = "ok"
	switch {
	case oldB.AggP99Millis == 0:
		status = "skip (zero baseline)"
	case oldB.AggP99Millis < minP99:
		status = "skip (below minp99)"
	case p99Ratio > p99Grow:
		status = "REGRESSION"
		regressions++
	}
	fmt.Fprintf(out, "  %-14s %10.2fms -> %10.2fms  (%5.2fx)  %s\n",
		"agg p99", oldB.AggP99Millis, newB.AggP99Millis, p99Ratio, status)

	drop := 0.0
	if oldB.AggregateRPS > 0 {
		drop = (oldB.AggregateRPS - newB.AggregateRPS) / oldB.AggregateRPS
	}
	status = "ok"
	switch {
	case oldB.AggregateRPS == 0:
		status = "skip (zero baseline)"
	case drop > tputDrop:
		status = "REGRESSION"
		regressions++
	}
	fmt.Fprintf(out, "  %-14s %8.1f/s -> %8.1f/s  (%+5.1f%%)  %s\n",
		"agg tput", oldB.AggregateRPS, newB.AggregateRPS, -drop*100, status)

	status = "ok"
	if newB.Status5xx > oldB.Status5xx {
		status = "REGRESSION"
		regressions++
	}
	fmt.Fprintf(out, "  %-14s %10d   -> %10d    %s\n", "5xx responses", oldB.Status5xx, newB.Status5xx, status)

	if regressions > 0 {
		fmt.Fprintf(out, "\n%d regression(s)\n", regressions)
		return 1
	}
	fmt.Fprintln(out, "\nno cluster regressions")
	return 0
}

// diffServe compares two serving-layer snapshots: p99 latency growth,
// throughput drop and the 5xx count.
func diffServe(out, errw io.Writer, oldPath, newPath string, oldRaw, newRaw []byte, p99Grow, tputDrop, minP99 float64) int {
	oldB, err := serve.ReadBench(oldRaw)
	if err != nil {
		fmt.Fprintf(errw, "ebda-benchdiff: %s: %v\n", oldPath, err)
		return 2
	}
	newB, err := serve.ReadBench(newRaw)
	if err != nil {
		fmt.Fprintf(errw, "ebda-benchdiff: %s: %v\n", newPath, err)
		return 2
	}
	fmt.Fprintf(out, "old: %s (%s, %d requests, seed %d)\n", oldPath, oldB.GoVersion, oldB.Requests, oldB.Seed)
	fmt.Fprintf(out, "new: %s (%s, %d requests, seed %d)\n", newPath, newB.GoVersion, newB.Requests, newB.Seed)
	if oldB.Seed != newB.Seed || oldB.Requests != newB.Requests {
		fmt.Fprintln(out, "warning: snapshots ran different workloads; numbers are weak evidence")
	}

	regressions := 0
	p99Ratio := 0.0
	if oldB.P99Millis > 0 {
		p99Ratio = newB.P99Millis / oldB.P99Millis
	}
	status := "ok"
	switch {
	case oldB.P99Millis == 0:
		status = "skip (zero baseline)"
	case oldB.P99Millis < minP99:
		status = "skip (below minp99)"
	case p99Ratio > p99Grow:
		status = "REGRESSION"
		regressions++
	}
	fmt.Fprintf(out, "  %-14s %10.2fms -> %10.2fms  (%5.2fx)  %s\n",
		"p99 latency", oldB.P99Millis, newB.P99Millis, p99Ratio, status)
	fmt.Fprintf(out, "  %-14s %10.2fms -> %10.2fms\n", "p50 latency", oldB.P50Millis, newB.P50Millis)

	drop := 0.0
	if oldB.ThroughputRPS > 0 {
		drop = (oldB.ThroughputRPS - newB.ThroughputRPS) / oldB.ThroughputRPS
	}
	status = "ok"
	switch {
	case oldB.ThroughputRPS == 0:
		status = "skip (zero baseline)"
	case drop > tputDrop:
		status = "REGRESSION"
		regressions++
	}
	fmt.Fprintf(out, "  %-14s %8.1f/s -> %8.1f/s  (%+5.1f%%)  %s\n",
		"throughput", oldB.ThroughputRPS, newB.ThroughputRPS, -drop*100, status)

	status = "ok"
	if newB.Status5xx > oldB.Status5xx {
		status = "REGRESSION"
		regressions++
	}
	fmt.Fprintf(out, "  %-14s %10d   -> %10d    %s\n", "5xx responses", oldB.Status5xx, newB.Status5xx, status)
	fmt.Fprintf(out, "  %-14s %10.3f   -> %10.3f\n", "coalesce rate", oldB.CoalesceRate, newB.CoalesceRate)

	if regressions > 0 {
		fmt.Fprintf(out, "\n%d regression(s)\n", regressions)
		return 1
	}
	fmt.Fprintln(out, "\nno serving-layer regressions")
	return 0
}
