// Command ebda-benchdiff compares two BENCH_verify.json perf snapshots
// (see `make bench-json`) and fails when wall times or verify-cache hit
// rates regress.
//
// Experiments are matched by ID and CDG cases by network name; entries
// present in only one snapshot are reported but never fail the diff. A
// wall-time regression is a ratio above -threshold (default 1.20, i.e.
// >20% slower) on an entry whose baseline wall time is at least -minwall
// seconds — sub-millisecond entries are timer noise, not signal. A
// hit-rate regression is a per-experiment verify-cache hit rate that
// dropped by more than -hitrate-drop (default 0.10, i.e. 10 percentage
// points) between snapshots, on experiments with cache traffic in both.
//
// Usage:
//
//	ebda-benchdiff old.json new.json
//	ebda-benchdiff -threshold 1.10 -minwall 0.01 -hitrate-drop 0.05 old.json new.json
//
// Exit status: 0 when no regression, 1 on regression, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ebda/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, performs the diff and
// returns the process exit status (0 clean, 1 regression, 2 usage/load
// error).
func run(argv []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ebda-benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	threshold := fs.Float64("threshold", 1.20, "fail when new/old wall-time ratio exceeds this")
	minWall := fs.Float64("minwall", 0.005, "ignore entries whose baseline wall time is below this many seconds")
	hitRateDrop := fs.Float64("hitrate-drop", 0.10, "fail when a per-experiment cache hit rate drops by more than this fraction")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errw, "usage: ebda-benchdiff [-threshold 1.2] [-minwall 0.005] OLD.json NEW.json")
		return 2
	}
	oldB, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}
	newB, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}

	fmt.Fprintf(out, "old: %s (%s, jobs=%d, gomaxprocs=%d)\n",
		fs.Arg(0), oldB.GoVersion, oldB.Jobs, oldB.GoMaxProcs)
	fmt.Fprintf(out, "new: %s (%s, jobs=%d, gomaxprocs=%d)\n",
		fs.Arg(1), newB.GoVersion, newB.Jobs, newB.GoMaxProcs)
	if oldB.Quick != newB.Quick {
		fmt.Fprintln(out, "warning: snapshots differ in -quick; wall times are not comparable")
	}

	regressions := 0
	regressions += diffRows(out, expRows(oldB), expRows(newB), *threshold, *minWall)
	regressions += diffRows(out, cdgRows(oldB), cdgRows(newB), *threshold, *minWall)
	regressions += diffHitRates(out, oldB, newB, *hitRateDrop)
	if regressions > 0 {
		fmt.Fprintf(out, "\n%d regression(s)\n", regressions)
		return 1
	}
	fmt.Fprintln(out, "\nno wall-time or cache hit-rate regressions")
	return 0
}

// row is one comparable measurement.
type row struct {
	name string
	wall float64
}

func expRows(b experiments.Bench) []row {
	out := make([]row, 0, len(b.Experiments))
	for _, e := range b.Experiments {
		out = append(out, row{name: e.ID, wall: e.WallSeconds})
	}
	return out
}

func cdgRows(b experiments.Bench) []row {
	out := make([]row, 0, len(b.CDG))
	for _, c := range b.CDG {
		out = append(out, row{name: "cdg " + c.Network, wall: c.WallSeconds})
	}
	return out
}

// diffRows prints the comparison of matching rows (by name) and returns
// the number of regressions.
func diffRows(w io.Writer, oldRows, newRows []row, threshold, minWall float64) int {
	byName := make(map[string]row, len(oldRows))
	for _, r := range oldRows {
		byName[r.name] = r
	}
	regressions := 0
	for _, n := range newRows {
		o, ok := byName[n.name]
		if !ok {
			fmt.Fprintf(w, "  %-28s only in new snapshot\n", n.name)
			continue
		}
		delete(byName, n.name)
		ratio := 0.0
		if o.wall > 0 {
			ratio = n.wall / o.wall
		}
		status := "ok"
		switch {
		case o.wall < minWall:
			status = "skip (below minwall)"
		case ratio > threshold:
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-28s %10.4fs -> %10.4fs  (%5.2fx)  %s\n",
			n.name, o.wall, n.wall, ratio, status)
	}
	for _, o := range oldRows {
		if _, ok := byName[o.name]; ok {
			fmt.Fprintf(w, "  %-28s only in old snapshot\n", o.name)
		}
	}
	return regressions
}

// cacheRow is one experiment's verify-cache traffic.
type cacheRow struct {
	name         string
	hits, misses uint64
}

func (r cacheRow) rate() float64 {
	if r.hits+r.misses == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.hits+r.misses)
}

func cacheRows(b experiments.Bench) []cacheRow {
	out := make([]cacheRow, 0, len(b.Experiments))
	for _, e := range b.Experiments {
		out = append(out, cacheRow{name: e.ID, hits: e.CacheHits, misses: e.CacheMisses})
	}
	return out
}

// diffHitRates compares per-experiment verify-cache hit rates and returns
// the number of regressions (rate dropped by more than maxDrop). Only
// experiments with cache traffic in both snapshots are compared — an
// experiment that stopped issuing cached verifications entirely shows up
// in the wall-time table, not here.
func diffHitRates(w io.Writer, oldB, newB experiments.Bench, maxDrop float64) int {
	byName := make(map[string]cacheRow)
	for _, r := range cacheRows(oldB) {
		byName[r.name] = r
	}
	regressions := 0
	printedHeader := false
	for _, n := range cacheRows(newB) {
		o, ok := byName[n.name]
		if !ok || o.hits+o.misses == 0 || n.hits+n.misses == 0 {
			continue
		}
		drop := o.rate() - n.rate()
		status := "ok"
		if drop > maxDrop {
			status = "REGRESSION"
			regressions++
		}
		if !printedHeader {
			fmt.Fprintln(w, "verify-cache hit rates:")
			printedHeader = true
		}
		fmt.Fprintf(w, "  %-28s %5.1f%% (%d/%d) -> %5.1f%% (%d/%d)  %s\n",
			n.name, o.rate()*100, o.hits, o.hits+o.misses,
			n.rate()*100, n.hits, n.hits+n.misses, status)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "  %d hit-rate drop(s) beyond %.0f points\n", regressions, maxDrop*100)
	}
	return regressions
}

func load(path string) (experiments.Bench, error) {
	var b experiments.Bench
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}
