// Command ebda-benchdiff compares two BENCH_verify.json perf snapshots
// (see `make bench-json`) and fails when wall times regress.
//
// Experiments are matched by ID and CDG cases by network name; entries
// present in only one snapshot are reported but never fail the diff. A
// regression is a wall-time ratio above -threshold (default 1.20, i.e.
// >20% slower) on an entry whose baseline wall time is at least -minwall
// seconds — sub-millisecond entries are timer noise, not signal.
//
// Usage:
//
//	ebda-benchdiff old.json new.json
//	ebda-benchdiff -threshold 1.10 -minwall 0.01 old.json new.json
//
// Exit status: 0 when no regression, 1 on regression, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ebda/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, performs the diff and
// returns the process exit status (0 clean, 1 regression, 2 usage/load
// error).
func run(argv []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ebda-benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	threshold := fs.Float64("threshold", 1.20, "fail when new/old wall-time ratio exceeds this")
	minWall := fs.Float64("minwall", 0.005, "ignore entries whose baseline wall time is below this many seconds")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errw, "usage: ebda-benchdiff [-threshold 1.2] [-minwall 0.005] OLD.json NEW.json")
		return 2
	}
	oldB, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}
	newB, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(errw, "ebda-benchdiff:", err)
		return 2
	}

	fmt.Fprintf(out, "old: %s (%s, jobs=%d, gomaxprocs=%d)\n",
		fs.Arg(0), oldB.GoVersion, oldB.Jobs, oldB.GoMaxProcs)
	fmt.Fprintf(out, "new: %s (%s, jobs=%d, gomaxprocs=%d)\n",
		fs.Arg(1), newB.GoVersion, newB.Jobs, newB.GoMaxProcs)
	if oldB.Quick != newB.Quick {
		fmt.Fprintln(out, "warning: snapshots differ in -quick; wall times are not comparable")
	}

	regressions := 0
	regressions += diffRows(out, expRows(oldB), expRows(newB), *threshold, *minWall)
	regressions += diffRows(out, cdgRows(oldB), cdgRows(newB), *threshold, *minWall)
	if regressions > 0 {
		fmt.Fprintf(out, "\n%d regression(s) beyond %.0f%%\n", regressions, (*threshold-1)*100)
		return 1
	}
	fmt.Fprintln(out, "\nno wall-time regressions")
	return 0
}

// row is one comparable measurement.
type row struct {
	name string
	wall float64
}

func expRows(b experiments.Bench) []row {
	out := make([]row, 0, len(b.Experiments))
	for _, e := range b.Experiments {
		out = append(out, row{name: e.ID, wall: e.WallSeconds})
	}
	return out
}

func cdgRows(b experiments.Bench) []row {
	out := make([]row, 0, len(b.CDG))
	for _, c := range b.CDG {
		out = append(out, row{name: "cdg " + c.Network, wall: c.WallSeconds})
	}
	return out
}

// diffRows prints the comparison of matching rows (by name) and returns
// the number of regressions.
func diffRows(w io.Writer, oldRows, newRows []row, threshold, minWall float64) int {
	byName := make(map[string]row, len(oldRows))
	for _, r := range oldRows {
		byName[r.name] = r
	}
	regressions := 0
	for _, n := range newRows {
		o, ok := byName[n.name]
		if !ok {
			fmt.Fprintf(w, "  %-28s only in new snapshot\n", n.name)
			continue
		}
		delete(byName, n.name)
		ratio := 0.0
		if o.wall > 0 {
			ratio = n.wall / o.wall
		}
		status := "ok"
		switch {
		case o.wall < minWall:
			status = "skip (below minwall)"
		case ratio > threshold:
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-28s %10.4fs -> %10.4fs  (%5.2fx)  %s\n",
			n.name, o.wall, n.wall, ratio, status)
	}
	for _, o := range oldRows {
		if _, ok := byName[o.name]; ok {
			fmt.Fprintf(w, "  %-28s only in old snapshot\n", o.name)
		}
	}
	return regressions
}

func load(path string) (experiments.Bench, error) {
	var b experiments.Bench
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}
