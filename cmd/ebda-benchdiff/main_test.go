package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ebda/internal/experiments"
)

// snapshot builds a Bench fixture with one experiment and one CDG case at
// the given wall times (seconds).
func snapshot(expWall, cdgWall float64) experiments.Bench {
	return experiments.Bench{
		GoVersion:  "go1.22",
		NumCPU:     8,
		GoMaxProcs: 8,
		Experiments: []experiments.BenchExperiment{
			{ID: "fig7", Name: "Figure 7", WallSeconds: expWall, Match: true},
		},
		CDG: []experiments.BenchCDG{
			{Network: "16x16 mesh", Channels: 480, Edges: 1000, Acyclic: true,
				WallSeconds: cdgWall, ChannelsPerSec: float64(480) / cdgWall},
		},
	}
}

// writeSnapshot marshals b into dir and returns the file path.
func writeSnapshot(t *testing.T, dir, name string, b experiments.Bench) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEqualSnapshots diffs a snapshot against itself: exit 0, no
// regressions.
func TestEqualSnapshots(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snapshot(1.0, 0.5))
	cur := writeSnapshot(t, dir, "new.json", snapshot(1.0, 0.5))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "no wall-time or cache hit-rate regressions") {
		t.Errorf("missing clean verdict in output:\n%s", out.String())
	}
}

// TestRegression diffs against a snapshot >20% slower: exit 1 and a
// REGRESSION row.
func TestRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snapshot(1.0, 0.5))
	cur := writeSnapshot(t, dir, "new.json", snapshot(1.5, 0.5))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION row in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 regression(s)") {
		t.Errorf("missing regression summary in output:\n%s", out.String())
	}
}

// TestBelowMinwallSkipped checks that a huge ratio on a sub-minwall
// baseline is noise, not a regression.
func TestBelowMinwallSkipped(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snapshot(0.001, 0.002))
	cur := writeSnapshot(t, dir, "new.json", snapshot(0.004, 0.004))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip (below minwall)") {
		t.Errorf("missing minwall skip in output:\n%s", out.String())
	}
}

// TestThresholdFlag tightens the threshold so a 10% slowdown fails.
func TestThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snapshot(1.0, 0.5))
	cur := writeSnapshot(t, dir, "new.json", snapshot(1.1, 0.5))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("default threshold: run = %d, want 0", code)
	}
	out.Reset()
	if code := run([]string{"-threshold", "1.05", old, cur}, &out, &errw); code != 1 {
		t.Fatalf("-threshold 1.05: run = %d, want 1; output:\n%s", code, out.String())
	}
}

// cacheSnapshot builds a Bench fixture whose single experiment carries
// the given verify-cache traffic (equal wall times, so only the hit-rate
// diff can fail).
func cacheSnapshot(hits, misses uint64) experiments.Bench {
	b := snapshot(1.0, 0.5)
	b.Experiments[0].CacheHits = hits
	b.Experiments[0].CacheMisses = misses
	if hits+misses > 0 {
		b.Experiments[0].CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return b
}

// TestHitRateRegression fails the diff when an experiment's cache hit
// rate drops past -hitrate-drop, and passes when the drop is within it.
func TestHitRateRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", cacheSnapshot(90, 10)) // 90%
	cur := writeSnapshot(t, dir, "new.json", cacheSnapshot(50, 50)) // 50%
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "verify-cache hit rates:") ||
		!strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing hit-rate regression row in output:\n%s", out.String())
	}

	// A 5-point drop stays within the default 10-point budget.
	out.Reset()
	cur = writeSnapshot(t, dir, "new2.json", cacheSnapshot(85, 15)) // 85%
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("small drop: run = %d, want 0; output:\n%s", code, out.String())
	}

	// Tightening -hitrate-drop makes the same small drop fail.
	out.Reset()
	if code := run([]string{"-hitrate-drop", "0.02", old, cur}, &out, &errw); code != 1 {
		t.Fatalf("-hitrate-drop 0.02: run = %d, want 1; output:\n%s", code, out.String())
	}
}

// TestHitRateSkipsNoTraffic ignores experiments without cache traffic on
// either side — no traffic means no rate to compare.
func TestHitRateSkipsNoTraffic(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", cacheSnapshot(90, 10))
	cur := writeSnapshot(t, dir, "new.json", cacheSnapshot(0, 0))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "verify-cache hit rates:") {
		t.Errorf("traffic-less experiment compared anyway:\n%s", out.String())
	}
}

// TestMalformedJSON checks load failures exit 2.
func TestMalformedJSON(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeSnapshot(t, dir, "good.json", snapshot(1.0, 0.5))
	var out, errw bytes.Buffer
	if code := run([]string{bad, good}, &out, &errw); code != 2 {
		t.Fatalf("malformed old: run = %d, want 2", code)
	}
	errw.Reset()
	if code := run([]string{good, bad}, &out, &errw); code != 2 {
		t.Fatalf("malformed new: run = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "bad.json") {
		t.Errorf("stderr does not name the malformed file: %s", errw.String())
	}
}

// TestUsageErrors checks missing arguments and unknown flags exit 2.
func TestUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("no args: run = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "usage:") {
		t.Errorf("missing usage line: %s", errw.String())
	}
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("unknown flag: run = %d, want 2", code)
	}
	if code := run([]string{"only-one.json"}, &out, &errw); code != 2 {
		t.Fatalf("one arg: run = %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errw); code != 2 {
		t.Fatalf("missing files: run = %d, want 2", code)
	}
}
