package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/experiments"
	"ebda/internal/serve"
)

// snapshot builds a Bench fixture with one experiment and one CDG case at
// the given wall times (seconds).
func snapshot(expWall, cdgWall float64) experiments.Bench {
	return experiments.Bench{
		GoVersion:  "go1.22",
		NumCPU:     8,
		GoMaxProcs: 8,
		Experiments: []experiments.BenchExperiment{
			{ID: "fig7", Name: "Figure 7", WallSeconds: expWall, Match: true},
		},
		CDG: []experiments.BenchCDG{
			{Network: "16x16 mesh", Channels: 480, Edges: 1000, Acyclic: true,
				WallSeconds: cdgWall, ChannelsPerSec: float64(480) / cdgWall},
		},
	}
}

// writeSnapshot marshals b into dir and returns the file path.
func writeSnapshot(t *testing.T, dir, name string, b experiments.Bench) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEqualSnapshots diffs a snapshot against itself: exit 0, no
// regressions.
func TestEqualSnapshots(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snapshot(1.0, 0.5))
	cur := writeSnapshot(t, dir, "new.json", snapshot(1.0, 0.5))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "no wall-time or cache hit-rate regressions") {
		t.Errorf("missing clean verdict in output:\n%s", out.String())
	}
}

// TestRegression diffs against a snapshot >20% slower: exit 1 and a
// REGRESSION row.
func TestRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snapshot(1.0, 0.5))
	cur := writeSnapshot(t, dir, "new.json", snapshot(1.5, 0.5))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION row in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 regression(s)") {
		t.Errorf("missing regression summary in output:\n%s", out.String())
	}
}

// TestBelowMinwallSkipped checks that a huge ratio on a sub-minwall
// baseline is noise, not a regression.
func TestBelowMinwallSkipped(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snapshot(0.001, 0.002))
	cur := writeSnapshot(t, dir, "new.json", snapshot(0.004, 0.004))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip (below minwall)") {
		t.Errorf("missing minwall skip in output:\n%s", out.String())
	}
}

// TestThresholdFlag tightens the threshold so a 10% slowdown fails.
func TestThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snapshot(1.0, 0.5))
	cur := writeSnapshot(t, dir, "new.json", snapshot(1.1, 0.5))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("default threshold: run = %d, want 0", code)
	}
	out.Reset()
	if code := run([]string{"-threshold", "1.05", old, cur}, &out, &errw); code != 1 {
		t.Fatalf("-threshold 1.05: run = %d, want 1; output:\n%s", code, out.String())
	}
}

// cacheSnapshot builds a Bench fixture whose single experiment carries
// the given verify-cache traffic (equal wall times, so only the hit-rate
// diff can fail).
func cacheSnapshot(hits, misses uint64) experiments.Bench {
	b := snapshot(1.0, 0.5)
	b.Experiments[0].CacheHits = hits
	b.Experiments[0].CacheMisses = misses
	if hits+misses > 0 {
		b.Experiments[0].CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return b
}

// TestHitRateRegression fails the diff when an experiment's cache hit
// rate drops past -hitrate-drop, and passes when the drop is within it.
func TestHitRateRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", cacheSnapshot(90, 10)) // 90%
	cur := writeSnapshot(t, dir, "new.json", cacheSnapshot(50, 50)) // 50%
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "verify-cache hit rates:") ||
		!strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing hit-rate regression row in output:\n%s", out.String())
	}

	// A 5-point drop stays within the default 10-point budget.
	out.Reset()
	cur = writeSnapshot(t, dir, "new2.json", cacheSnapshot(85, 15)) // 85%
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("small drop: run = %d, want 0; output:\n%s", code, out.String())
	}

	// Tightening -hitrate-drop makes the same small drop fail.
	out.Reset()
	if code := run([]string{"-hitrate-drop", "0.02", old, cur}, &out, &errw); code != 1 {
		t.Fatalf("-hitrate-drop 0.02: run = %d, want 1; output:\n%s", code, out.String())
	}
}

// TestHitRateSkipsNoTraffic ignores experiments without cache traffic on
// either side — no traffic means no rate to compare.
func TestHitRateSkipsNoTraffic(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", cacheSnapshot(90, 10))
	cur := writeSnapshot(t, dir, "new.json", cacheSnapshot(0, 0))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "verify-cache hit rates:") {
		t.Errorf("traffic-less experiment compared anyway:\n%s", out.String())
	}
}

// TestMalformedJSON checks load failures exit 2.
func TestMalformedJSON(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeSnapshot(t, dir, "good.json", snapshot(1.0, 0.5))
	var out, errw bytes.Buffer
	if code := run([]string{bad, good}, &out, &errw); code != 2 {
		t.Fatalf("malformed old: run = %d, want 2", code)
	}
	errw.Reset()
	if code := run([]string{good, bad}, &out, &errw); code != 2 {
		t.Fatalf("malformed new: run = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "bad.json") {
		t.Errorf("stderr does not name the malformed file: %s", errw.String())
	}
}

// TestUsageErrors checks missing arguments and unknown flags exit 2.
func TestUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("no args: run = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "usage:") {
		t.Errorf("missing usage line: %s", errw.String())
	}
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("unknown flag: run = %d, want 2", code)
	}
	if code := run([]string{"only-one.json"}, &out, &errw); code != 2 {
		t.Fatalf("one arg: run = %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errw); code != 2 {
		t.Fatalf("missing files: run = %d, want 2", code)
	}
}

// serveSnapshot builds a serving-layer fixture.
func serveSnapshot(p99MS, tput float64, s5xx int) serve.Bench {
	return serve.Bench{
		Kind: serve.BenchKind, GoVersion: "go1.24", NumCPU: 8,
		Seed: 1, Requests: 300,
		Status2xx: 300 - s5xx, Status5xx: s5xx,
		Cache: 200, Computed: 90, Coalesced: 10, CoalesceRate: 10.0 / 300,
		WallSeconds: float64(300) / tput, ThroughputRPS: tput,
		P50Millis: p99MS / 4, P99Millis: p99MS,
	}
}

// writeServeSnapshot marshals b into dir and returns the file path.
func writeServeSnapshot(t *testing.T, dir, name string, b serve.Bench) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeEqualSnapshots diffs a serve snapshot against itself: clean.
func TestServeEqualSnapshots(t *testing.T) {
	dir := t.TempDir()
	old := writeServeSnapshot(t, dir, "old.json", serveSnapshot(20, 500, 0))
	cur := writeServeSnapshot(t, dir, "new.json", serveSnapshot(20, 500, 0))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "no serving-layer regressions") {
		t.Errorf("missing clean verdict:\n%s", out.String())
	}
}

// TestServeP99Regression fails when p99 grows past -p99-grow.
func TestServeP99Regression(t *testing.T) {
	dir := t.TempDir()
	old := writeServeSnapshot(t, dir, "old.json", serveSnapshot(20, 500, 0))
	cur := writeServeSnapshot(t, dir, "new.json", serveSnapshot(30, 500, 0)) // 1.5x
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "p99 latency") || !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing p99 REGRESSION row:\n%s", out.String())
	}
	// A 1.2x growth stays inside the default 1.25 budget...
	out.Reset()
	cur = writeServeSnapshot(t, dir, "new2.json", serveSnapshot(24, 500, 0))
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("1.2x growth: run = %d, want 0; output:\n%s", code, out.String())
	}
	// ...and fails once -p99-grow tightens.
	out.Reset()
	if code := run([]string{"-p99-grow", "1.10", old, cur}, &out, &errw); code != 1 {
		t.Fatalf("-p99-grow 1.10: run = %d, want 1; output:\n%s", code, out.String())
	}
}

// TestServeMinP99SkipsNoise skips the latency check on sub-minp99
// baselines where a large ratio is scheduler noise.
func TestServeMinP99SkipsNoise(t *testing.T) {
	dir := t.TempDir()
	old := writeServeSnapshot(t, dir, "old.json", serveSnapshot(0.5, 500, 0))
	cur := writeServeSnapshot(t, dir, "new.json", serveSnapshot(0.9, 500, 0)) // 1.8x but tiny
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip (below minp99)") {
		t.Errorf("missing minp99 skip:\n%s", out.String())
	}
}

// TestServeThroughputRegression fails when throughput drops past
// -tput-drop.
func TestServeThroughputRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeServeSnapshot(t, dir, "old.json", serveSnapshot(20, 500, 0))
	cur := writeServeSnapshot(t, dir, "new.json", serveSnapshot(20, 300, 0)) // -40%
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "throughput") || !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing throughput REGRESSION row:\n%s", out.String())
	}
	// A 10% drop is within the default budget; -tput-drop 0.05 fails it.
	out.Reset()
	cur = writeServeSnapshot(t, dir, "new2.json", serveSnapshot(20, 450, 0))
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("10%% drop: run = %d, want 0; output:\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-tput-drop", "0.05", old, cur}, &out, &errw); code != 1 {
		t.Fatalf("-tput-drop 0.05: run = %d, want 1; output:\n%s", code, out.String())
	}
}

// TestServe5xxRegression fails when the 5xx count increases.
func TestServe5xxRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeServeSnapshot(t, dir, "old.json", serveSnapshot(20, 500, 0))
	cur := writeServeSnapshot(t, dir, "new.json", serveSnapshot(20, 500, 3))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "5xx responses") || !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing 5xx REGRESSION row:\n%s", out.String())
	}
}

// TestMixedKindsRejected refuses to diff an engine snapshot against a
// serve snapshot.
func TestMixedKindsRejected(t *testing.T) {
	dir := t.TempDir()
	eng := writeSnapshot(t, dir, "engine.json", snapshot(1.0, 0.5))
	srv := writeServeSnapshot(t, dir, "serve.json", serveSnapshot(20, 500, 0))
	var out, errw bytes.Buffer
	if code := run([]string{eng, srv}, &out, &errw); code != 2 {
		t.Fatalf("mixed kinds: run = %d, want 2; stderr: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "kinds differ") {
		t.Errorf("missing kind mismatch message: %s", errw.String())
	}
}

// deltaSnapshot builds a delta fixture with the two standard cases at
// the given ratios (a 100µs full baseline scales the absolute costs).
func deltaSnapshot(linkRatio, toggleRatio float64, incremental uint64) cdg.DeltaBench {
	mk := func(name string, ratio float64) cdg.DeltaBenchCase {
		const fullNS = 100_000.0
		return cdg.DeltaBenchCase{
			Name: name, Network: "8x8 mesh",
			FullNanos: fullNS, DeltaNanos: ratio * fullNS, Ratio: ratio,
			Incremental: incremental,
		}
	}
	return cdg.DeltaBench{
		Kind: cdg.DeltaBenchKind, GoVersion: "go1.24", NumCPU: 8, Jobs: 1, Rounds: 256,
		Cases: []cdg.DeltaBenchCase{
			mk("mesh8x8/single-link", linkRatio),
			mk("mesh8x8/turn-toggle", toggleRatio),
		},
	}
}

// writeDeltaSnapshot marshals b into dir and returns the file path.
func writeDeltaSnapshot(t *testing.T, dir, name string, b cdg.DeltaBench) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDeltaEqualSnapshots diffs a delta snapshot against itself: clean.
func TestDeltaEqualSnapshots(t *testing.T) {
	dir := t.TempDir()
	old := writeDeltaSnapshot(t, dir, "old.json", deltaSnapshot(0.02, 0.5, 256))
	cur := writeDeltaSnapshot(t, dir, "new.json", deltaSnapshot(0.02, 0.5, 256))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "no incremental-verification regressions") {
		t.Errorf("missing clean verdict:\n%s", out.String())
	}
}

// TestDeltaRatioJitterTolerated: relative ratio movement is never gated
// (microsecond-scale delta costs jitter by whole multiples between
// runs), so even a 1.5x grow passes while the absolute gates hold.
func TestDeltaRatioJitterTolerated(t *testing.T) {
	dir := t.TempDir()
	old := writeDeltaSnapshot(t, dir, "old.json", deltaSnapshot(0.02, 0.5, 256))
	cur := writeDeltaSnapshot(t, dir, "new.json", deltaSnapshot(0.03, 0.75, 256)) // 1.5x both
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1.50x") {
		t.Errorf("grow column should still report the movement:\n%s", out.String())
	}
}

// TestDeltaSlowerThanFullFails: an incremental path that costs more
// than its from-scratch baseline (ratio above 1) is a defect in any
// case, gated or not.
func TestDeltaSlowerThanFullFails(t *testing.T) {
	dir := t.TempDir()
	old := writeDeltaSnapshot(t, dir, "old.json", deltaSnapshot(0.02, 0.5, 256))
	cur := writeDeltaSnapshot(t, dir, "new.json", deltaSnapshot(0.02, 1.3, 256))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "incremental slower than full verify") {
		t.Errorf("missing slower-than-full REGRESSION row:\n%s", out.String())
	}
}

// TestDeltaAbsoluteGate holds single-link cases to the -delta-ratio
// ceiling even when old and new agree.
func TestDeltaAbsoluteGate(t *testing.T) {
	dir := t.TempDir()
	old := writeDeltaSnapshot(t, dir, "old.json", deltaSnapshot(0.08, 0.5, 256))
	cur := writeDeltaSnapshot(t, dir, "new.json", deltaSnapshot(0.08, 0.5, 256))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "gate") {
		t.Errorf("missing gate REGRESSION row:\n%s", out.String())
	}
	// Loosening the gate clears it; the toggle case is never gated.
	out.Reset()
	if code := run([]string{"-delta-ratio", "0.10", old, cur}, &out, &errw); code != 0 {
		t.Fatalf("-delta-ratio 0.10: run = %d, want 0; output:\n%s", code, out.String())
	}
}

// TestDeltaZeroBaselineSkipped: a baseline case with ratio 0 carries no
// signal, so any new ratio is reported as a skip, not a regression.
func TestDeltaZeroBaselineSkipped(t *testing.T) {
	dir := t.TempDir()
	old := writeDeltaSnapshot(t, dir, "old.json", deltaSnapshot(0.0, 0.0, 256))
	cur := writeDeltaSnapshot(t, dir, "new.json", deltaSnapshot(0.02, 0.5, 256))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip (zero baseline)") {
		t.Errorf("missing zero-baseline skip:\n%s", out.String())
	}
}

// TestDeltaNoIncrementalFails: a snapshot whose diffs all fell back to
// full peels measured nothing and must fail the diff.
func TestDeltaNoIncrementalFails(t *testing.T) {
	dir := t.TempDir()
	old := writeDeltaSnapshot(t, dir, "old.json", deltaSnapshot(0.02, 0.5, 256))
	cur := writeDeltaSnapshot(t, dir, "new.json", deltaSnapshot(0.02, 0.5, 0))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no incremental verifications") {
		t.Errorf("missing no-incremental REGRESSION row:\n%s", out.String())
	}
}

// TestDeltaMixedKindsRejected refuses delta-vs-serve diffs.
func TestDeltaMixedKindsRejected(t *testing.T) {
	dir := t.TempDir()
	del := writeDeltaSnapshot(t, dir, "delta.json", deltaSnapshot(0.02, 0.5, 256))
	srv := writeServeSnapshot(t, dir, "serve.json", serveSnapshot(20, 500, 0))
	var out, errw bytes.Buffer
	if code := run([]string{del, srv}, &out, &errw); code != 2 {
		t.Fatalf("mixed kinds: run = %d, want 2; stderr: %s", code, errw.String())
	}
}

// clusterSnapshot builds a cluster fixture.
func clusterSnapshot(scaling float64, peerHits, forwards, s5xx int) serve.ClusterBench {
	return serve.ClusterBench{
		Kind: serve.ClusterBenchKind, GoVersion: "go1.24", NumCPU: 1,
		Seed: 1, Replicas: 4, Requests: 800, Designs: 64, MisrouteRate: 0.10,
		BaselineWallSeconds: 0.5, BaselineRPS: 1600,
		// AggregateRPS is fixed rather than derived from scaling so a
		// test can move the scaling gate without also tripping the
		// relative throughput gate.
		ClusterWallSeconds: 0.5 / scaling, AggregateRPS: 5000, ScalingX: scaling,
		PeerHits: peerHits, Forwards: forwards,
		Status2xx: 800 - s5xx, Status5xx: s5xx,
		AggP50Millis: 5, AggP99Millis: 20,
	}
}

// writeClusterSnapshot marshals b into dir and returns the file path.
func writeClusterSnapshot(t *testing.T, dir, name string, b serve.ClusterBench) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestClusterEqualSnapshots diffs a healthy cluster snapshot against
// itself: clean.
func TestClusterEqualSnapshots(t *testing.T) {
	dir := t.TempDir()
	old := writeClusterSnapshot(t, dir, "old.json", clusterSnapshot(3.5, 60, 30, 0))
	cur := writeClusterSnapshot(t, dir, "new.json", clusterSnapshot(3.5, 60, 30, 0))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "no cluster regressions") {
		t.Errorf("missing clean verdict:\n%s", out.String())
	}
}

// TestClusterScalingGate fails a 4-replica run whose scaling falls
// below the -cluster-scaling floor, judged on the new snapshot alone.
func TestClusterScalingGate(t *testing.T) {
	dir := t.TempDir()
	old := writeClusterSnapshot(t, dir, "old.json", clusterSnapshot(3.5, 60, 30, 0))
	cur := writeClusterSnapshot(t, dir, "new.json", clusterSnapshot(2.4, 60, 30, 0))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "below 3.00x floor") {
		t.Errorf("missing scaling REGRESSION row:\n%s", out.String())
	}
	// Loosening the gate clears the same snapshot.
	out.Reset()
	if code := run([]string{"-cluster-scaling", "2.0", old, cur}, &out, &errw); code != 0 {
		t.Fatalf("-cluster-scaling 2.0: run = %d, want 0; output:\n%s", code, out.String())
	}
}

// TestClusterScalingFloorScalesWithReplicas holds a 2-replica run to
// half the 4-replica floor.
func TestClusterScalingFloorScalesWithReplicas(t *testing.T) {
	dir := t.TempDir()
	two := clusterSnapshot(1.6, 60, 30, 0)
	two.Replicas = 2
	old := writeClusterSnapshot(t, dir, "old.json", two)
	cur := writeClusterSnapshot(t, dir, "new.json", two)
	var out, errw bytes.Buffer
	// 1.6x clears the scaled 1.5x floor.
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	two.ScalingX = 1.4
	cur = writeClusterSnapshot(t, dir, "new2.json", two)
	out.Reset()
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("1.4x at 2 replicas: run = %d, want 1; output:\n%s", code, out.String())
	}
}

// TestClusterRoutingNotExercised fails a snapshot that never answered
// from a peer cache or never forwarded — the run proved nothing about
// the router.
func TestClusterRoutingNotExercised(t *testing.T) {
	dir := t.TempDir()
	old := writeClusterSnapshot(t, dir, "old.json", clusterSnapshot(3.5, 60, 30, 0))
	for _, c := range []struct {
		name           string
		hits, forwards int
	}{
		{"no-peer-hits.json", 0, 30},
		{"no-forwards.json", 60, 0},
	} {
		cur := writeClusterSnapshot(t, dir, c.name, clusterSnapshot(3.5, c.hits, c.forwards, 0))
		var out, errw bytes.Buffer
		if code := run([]string{old, cur}, &out, &errw); code != 1 {
			t.Fatalf("%s: run = %d, want 1; output:\n%s", c.name, code, out.String())
		}
		if !strings.Contains(out.String(), "routing path not exercised") {
			t.Errorf("%s: missing routing REGRESSION row:\n%s", c.name, out.String())
		}
	}
}

// TestCluster5xxRegression fails when the 5xx count increases.
func TestCluster5xxRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeClusterSnapshot(t, dir, "old.json", clusterSnapshot(3.5, 60, 30, 0))
	cur := writeClusterSnapshot(t, dir, "new.json", clusterSnapshot(3.5, 60, 30, 2))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 1 {
		t.Fatalf("run = %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "5xx responses") || !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing 5xx REGRESSION row:\n%s", out.String())
	}
}

// TestClusterZeroBaselineSkipped: a degenerate baseline (zero agg p99
// and throughput) anchors no relative comparison but still lets the
// absolute gates run.
func TestClusterZeroBaselineSkipped(t *testing.T) {
	dir := t.TempDir()
	oldB := clusterSnapshot(3.5, 60, 30, 0)
	oldB.AggP99Millis = 0
	oldB.AggregateRPS = 0
	old := writeClusterSnapshot(t, dir, "old.json", oldB)
	cur := writeClusterSnapshot(t, dir, "new.json", clusterSnapshot(3.5, 60, 30, 0))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip (zero baseline)") {
		t.Errorf("missing zero-baseline skip:\n%s", out.String())
	}
}

// TestClusterMixedKindsRejected refuses cluster-vs-serve diffs.
func TestClusterMixedKindsRejected(t *testing.T) {
	dir := t.TempDir()
	clu := writeClusterSnapshot(t, dir, "cluster.json", clusterSnapshot(3.5, 60, 30, 0))
	srv := writeServeSnapshot(t, dir, "serve.json", serveSnapshot(20, 500, 0))
	var out, errw bytes.Buffer
	if code := run([]string{clu, srv}, &out, &errw); code != 2 {
		t.Fatalf("mixed kinds: run = %d, want 2; stderr: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "kinds differ") {
		t.Errorf("missing kind mismatch message: %s", errw.String())
	}
}

// TestZeroWallBaselineSkipped: a baseline row with wall time 0 is
// skipped explicitly even when -minwall is disabled.
func TestZeroWallBaselineSkipped(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snapshot(0.0, 0.5))
	cur := writeSnapshot(t, dir, "new.json", snapshot(3.0, 0.5))
	var out, errw bytes.Buffer
	if code := run([]string{"-minwall", "0", old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip (zero baseline)") {
		t.Errorf("missing zero-baseline skip:\n%s", out.String())
	}
}

// TestHitRateZeroBaselineSkipped: quick-mode rows carry hit rate 0 with
// real miss traffic; they have no rate to regress from.
func TestHitRateZeroBaselineSkipped(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", cacheSnapshot(0, 10)) // rate 0, traffic 10
	cur := writeSnapshot(t, dir, "new.json", cacheSnapshot(5, 5))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip (zero baseline)") {
		t.Errorf("missing zero-baseline skip:\n%s", out.String())
	}
}

// TestServeZeroThroughputBaselineSkipped: a degenerate baseline with 0
// throughput cannot anchor a drop ratio.
func TestServeZeroThroughputBaselineSkipped(t *testing.T) {
	dir := t.TempDir()
	oldB := serveSnapshot(20, 500, 0)
	oldB.ThroughputRPS = 0
	oldB.WallSeconds = 0
	old := writeServeSnapshot(t, dir, "old.json", oldB)
	cur := writeServeSnapshot(t, dir, "new.json", serveSnapshot(20, 500, 0))
	var out, errw bytes.Buffer
	if code := run([]string{old, cur}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skip (zero baseline)") {
		t.Errorf("missing zero-baseline skip:\n%s", out.String())
	}
}
