// Command ebda-figures regenerates the turn-set figures of the EbDa paper
// (Figures 3-9) and the section-level numeric artifacts (Section 2 search
// space as figure 0, Section 5 worked example as figure 14, Section 6.2
// Hamiltonian coverage as figure 15).
//
// Usage:
//
//	ebda-figures [-fig N]    (N in {0, 3..10, 14, 15}; default: all)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/paper"
	"ebda/internal/topology"
)

func main() {
	fig := flag.Int("fig", -1, "figure number (0, 3-10, 14, 15); -1 prints all")
	flag.Parse()
	figs := allFigs
	if *fig >= 0 {
		figs = []int{*fig}
	}
	if err := render(os.Stdout, figs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// allFigs fixes the emission order; printers is a map, so iteration must
// never range over it directly.
var allFigs = []int{0, 3, 4, 5, 6, 7, 8, 9, 10, 14, 15}

// render writes the requested figures to w. All output flows through w so
// the emitters are testable — the regression tests render twice and
// require byte-identical output.
func render(w io.Writer, figs []int) error {
	for _, f := range figs {
		fn, ok := printers[f]
		if !ok {
			return fmt.Errorf("unknown figure %d", f)
		}
		if err := fn(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

var printers = map[int]func(io.Writer) error{
	0:  printSection2,
	3:  printFig3,
	4:  printFig4,
	5:  printFig5,
	6:  printFig6,
	7:  printFig7,
	8:  printFig8,
	9:  printFig9,
	10: printFig10,
	14: printSection5,
	15: printHamiltonian,
}

func printFig10(w io.Writer) error {
	chain := paper.Figure10()
	fmt.Fprintf(w, "Figure 10: Odd-Even turns via %s\n", chain.PlainString())
	for _, row := range paper.Table4Expected() {
		fmt.Fprintf(w, "  %-8s %s\n", row.Label, row.Turns90)
	}
	fmt.Fprintln(w, verifyLine(topology.NewMesh(8, 8), chain))
	return nil
}

func verifyLine(net *topology.Network, chain *core.Chain) string {
	return "  verification: " + cdg.VerifyChain(net, chain).String()
}

func printFig3(w io.Writer) error {
	chain := paper.Figure3()
	fmt.Fprintf(w, "Figure 3: %s\n", chain.PlainString())
	fmt.Fprintf(w, "  90-degree turns: %s\n", core.FormatTurnsPlain(chain.Turns90().Turns()))
	fmt.Fprintln(w, verifyLine(topology.NewMesh(8, 8), chain))
	return nil
}

func printFig4(w io.Writer) error {
	chain := paper.Figure4()
	ts := chain.AllTurns()
	_, nU, nI := ts.Counts()
	fmt.Fprintf(w, "Figure 4: %s\n", chain.PlainString())
	fmt.Fprintf(w, "  U-turns (%d): %s\n", nU, core.FormatTurns(ts.ByKind(core.UTurn)))
	fmt.Fprintf(w, "  I-turns (%d): %s\n", nI, core.FormatTurns(ts.ByKind(core.ITurn)))
	u, i, total := core.UITurnCounts(3, 3)
	fmt.Fprintf(w, "  formula: n(n-1)/2 = %d = ab (%d) + C(a,2)+C(b,2) (%d)\n", total, u, i)
	return nil
}

func printFig5(w io.Writer) error {
	chain := paper.Figure5()
	ts := chain.AllTurns()
	fmt.Fprintf(w, "Figure 5: %s (North-Last)\n", chain.PlainString())
	fmt.Fprintf(w, "  90-degree turns: %s\n", core.FormatTurnsPlain(chain.Turns90().Turns()))
	fmt.Fprintf(w, "  U-turns: %s\n", core.FormatTurnsPlain(ts.ByKind(core.UTurn)))
	fmt.Fprintln(w, verifyLine(topology.NewMesh(8, 8), chain))
	return nil
}

func printFig6(w io.Writer) error {
	fmt.Fprintln(w, "Figure 6: partitioning strategies for four channels")
	mesh := topology.NewMesh(6, 6)
	for _, nc := range paper.Figure6() {
		fmt.Fprintf(w, "  %-30s %s\n", nc.Name, nc.Chain.PlainString())
		fmt.Fprintf(w, "    90-degree turns: %s\n", core.FormatTurnsPlain(nc.Chain.Turns90().Turns()))
		fmt.Fprintf(w, "    %s\n", cdg.VerifyChain(mesh, nc.Chain))
	}
	return nil
}

func printFig7(w io.Writer) error {
	fmt.Fprintln(w, "Figure 7: fully adaptive 2D designs")
	mesh := topology.NewMesh(5, 5)
	for _, tc := range []struct {
		name  string
		chain *core.Chain
	}{
		{"(a) four partitions, 8 channels", paper.Figure7FourPartitions()},
		{"(b) P1 = DyXY, 6 channels", paper.Figure7P1()},
		{"(c) P2, 6 channels", paper.Figure7P2()},
	} {
		vcs := cdg.VCConfigFor(2, tc.chain.Channels())
		ad, err := cdg.Adaptiveness(mesh, vcs, tc.chain.AllTurns())
		fmt.Fprintf(w, "  %-32s %s\n", tc.name, tc.chain)
		if err != nil {
			fmt.Fprintf(w, "    adaptiveness: %v\n", err)
		} else {
			fmt.Fprintf(w, "    %s; fully adaptive: %v\n", ad, ad.FullyAdaptive())
		}
		fmt.Fprintf(w, "    %s\n", cdg.VerifyChain(mesh, tc.chain))
	}
	fmt.Fprintf(w, "  minimum channels for n=2: %d\n", core.MinChannelsFullyAdaptive(2))
	return nil
}

func printFig8(w io.Writer) error {
	chain := paper.Figure8()
	fmt.Fprintf(w, "Figure 8: turn extraction for %s\n", chain)
	for _, b := range paper.Figure8Boxes() {
		fmt.Fprintf(w, "  %s\n", b.Label)
		if b.Turns90 != "" {
			fmt.Fprintf(w, "    Turns:   %s\n", b.Turns90)
		}
		if b.UTurns != "" {
			fmt.Fprintf(w, "    U-Turns: %s\n", b.UTurns)
		}
		if b.ITurns != "" {
			fmt.Fprintf(w, "    I-Turns: %s\n", b.ITurns)
		}
		if b.Notes != "" {
			fmt.Fprintf(w, "    note: %s\n", b.Notes)
		}
	}
	ts := chain.AllTurns()
	n90, nU, nI := ts.Counts()
	fmt.Fprintf(w, "  totals: %d 90-degree, %d U, %d I\n", n90, nU, nI)
	fmt.Fprintln(w, verifyLine(topology.NewMesh(3, 3, 3), chain))
	return nil
}

func printFig9(w io.Writer) error {
	fmt.Fprintln(w, "Figure 9: 3D fully adaptive designs")
	mesh := topology.NewMesh(3, 3, 3)
	for _, tc := range []struct {
		name  string
		chain *core.Chain
	}{
		{"(a) eight partitions, 24 channels", paper.Figure9EightPartitions()},
		{"(b) four partitions, 16 channels (2,2,4 VCs)", paper.Figure9B()},
		{"(c) four partitions, 16 channels (3,2,3 VCs)", paper.Figure9C()},
	} {
		fmt.Fprintf(w, "  %-46s %s\n", tc.name, tc.chain)
		vcs := cdg.VCConfigFor(3, tc.chain.Channels())
		ad, err := cdg.Adaptiveness(mesh, vcs, tc.chain.AllTurns())
		if err == nil {
			fmt.Fprintf(w, "    %s; fully adaptive: %v\n", ad, ad.FullyAdaptive())
		}
		fmt.Fprintf(w, "    %s\n", cdg.VerifyChain(mesh, tc.chain))
	}
	fmt.Fprintf(w, "  minimum channels for n=3: %d\n", core.MinChannelsFullyAdaptive(3))
	return nil
}

func printSection2(w io.Writer) error {
	fmt.Fprintln(w, "Section 2: turn-model verification search space")
	for _, c := range paper.Section2Claims() {
		fmt.Fprintf(w, "  %-35s %2d abstract cycles -> %s combinations (paper: %s)\n",
			c.Setting, c.Cycles, c.Combos, c.PaperText)
		if !c.Consistent {
			fmt.Fprintf(w, "    note: %s\n", c.Notes)
		}
	}
	rs := paper.TurnModelSearch(topology.NewMesh(4, 4))
	free, classes := paper.CountDeadlockFree(rs)
	fmt.Fprintf(w, "  brute force over all 16 2D removals: %d deadlock-free, %d unique under symmetry\n",
		free, classes)
	for _, r := range rs {
		status := "deadlock-free"
		if !r.DeadlockFree {
			status = "CYCLIC"
		}
		fmt.Fprintf(w, "    remove %s (cw) + %s (ccw): %s (class %d)\n",
			r.RemovedCW.PlainString(), r.RemovedCCW.PlainString(), status, r.SymmetryClass)
	}
	res3 := paper.TurnModelSearch3D(topology.NewMesh(3, 3, 3))
	fmt.Fprintf(w, "  3D sweep (beyond the paper): %d combinations, %d deadlock-free, %d classes under cube symmetry\n",
		res3.Combinations, res3.DeadlockFree, res3.Classes)
	return nil
}

func printSection5(w io.Writer) error {
	fmt.Fprintln(w, "Section 5 worked example: Algorithm 1 on 3,2,3 VCs")
	arr := paper.Section5Arrangement()
	for _, s := range arr {
		fmt.Fprintf(w, "  input %s\n", s)
	}
	chain, err := paper.Section5Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  result: %s\n", chain)
	fmt.Fprintf(w, "  paper:  %s\n", paper.Section5Expected)
	fmt.Fprintln(w, verifyLine(topology.NewMesh(3, 3, 3), chain))
	return nil
}

func printHamiltonian(w io.Writer) error {
	chain := paper.HamiltonianChain()
	ts := chain.AllTurns()
	n90, _, _ := ts.Counts()
	fmt.Fprintf(w, "Section 6.2: Hamiltonian-path strategy via %s\n", chain.PlainString())
	fmt.Fprintf(w, "  90-degree turns (%d): %s\n", n90, core.FormatTurnsPlain(ts.ByKind(core.Turn90)))
	covered := true
	for _, t := range paper.HamiltonianPathTurns() {
		if !ts.Allows(t.From, t.To) {
			covered = false
		}
	}
	fmt.Fprintf(w, "  covers all 8 dual-Hamiltonian-path turns: %v\n", covered)
	rep := cdg.VerifyTurnSet(topology.NewMesh(6, 6), nil, ts)
	fmt.Fprintf(w, "  verification: %s\n", rep)
	return nil
}
