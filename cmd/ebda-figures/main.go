// Command ebda-figures regenerates the turn-set figures of the EbDa paper
// (Figures 3-9) and the section-level numeric artifacts (Section 2 search
// space as figure 0, Section 5 worked example as figure 14, Section 6.2
// Hamiltonian coverage as figure 15).
//
// Usage:
//
//	ebda-figures [-fig N]    (N in {0, 3..9, 14, 15}; default: all)
package main

import (
	"flag"
	"fmt"
	"os"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/paper"
	"ebda/internal/topology"
)

func main() {
	fig := flag.Int("fig", -1, "figure number (0, 3-9, 14, 15); -1 prints all")
	flag.Parse()
	figs := []int{0, 3, 4, 5, 6, 7, 8, 9, 10, 14, 15}
	if *fig >= 0 {
		figs = []int{*fig}
	}
	for _, f := range figs {
		if fn, ok := printers[f]; ok {
			fn()
			fmt.Println()
		} else {
			fmt.Fprintf(os.Stderr, "unknown figure %d\n", f)
			os.Exit(2)
		}
	}
}

var printers = map[int]func(){
	0:  printSection2,
	3:  printFig3,
	4:  printFig4,
	5:  printFig5,
	6:  printFig6,
	7:  printFig7,
	8:  printFig8,
	9:  printFig9,
	10: printFig10,
	14: printSection5,
	15: printHamiltonian,
}

func printFig10() {
	chain := paper.Figure10()
	fmt.Printf("Figure 10: Odd-Even turns via %s\n", chain.PlainString())
	for _, row := range paper.Table4Expected() {
		fmt.Printf("  %-8s %s\n", row.Label, row.Turns90)
	}
	fmt.Println(verifyLine(topology.NewMesh(8, 8), chain))
}

func verifyLine(net *topology.Network, chain *core.Chain) string {
	return "  verification: " + cdg.VerifyChain(net, chain).String()
}

func printFig3() {
	chain := paper.Figure3()
	fmt.Printf("Figure 3: %s\n", chain.PlainString())
	fmt.Printf("  90-degree turns: %s\n", core.FormatTurnsPlain(chain.Turns90().Turns()))
	fmt.Println(verifyLine(topology.NewMesh(8, 8), chain))
}

func printFig4() {
	chain := paper.Figure4()
	ts := chain.AllTurns()
	_, nU, nI := ts.Counts()
	fmt.Printf("Figure 4: %s\n", chain.PlainString())
	fmt.Printf("  U-turns (%d): %s\n", nU, core.FormatTurns(ts.ByKind(core.UTurn)))
	fmt.Printf("  I-turns (%d): %s\n", nI, core.FormatTurns(ts.ByKind(core.ITurn)))
	u, i, total := core.UITurnCounts(3, 3)
	fmt.Printf("  formula: n(n-1)/2 = %d = ab (%d) + C(a,2)+C(b,2) (%d)\n", total, u, i)
}

func printFig5() {
	chain := paper.Figure5()
	ts := chain.AllTurns()
	fmt.Printf("Figure 5: %s (North-Last)\n", chain.PlainString())
	fmt.Printf("  90-degree turns: %s\n", core.FormatTurnsPlain(chain.Turns90().Turns()))
	fmt.Printf("  U-turns: %s\n", core.FormatTurnsPlain(ts.ByKind(core.UTurn)))
	fmt.Println(verifyLine(topology.NewMesh(8, 8), chain))
}

func printFig6() {
	fmt.Println("Figure 6: partitioning strategies for four channels")
	mesh := topology.NewMesh(6, 6)
	for _, nc := range paper.Figure6() {
		fmt.Printf("  %-30s %s\n", nc.Name, nc.Chain.PlainString())
		fmt.Printf("    90-degree turns: %s\n", core.FormatTurnsPlain(nc.Chain.Turns90().Turns()))
		fmt.Printf("    %s\n", cdg.VerifyChain(mesh, nc.Chain))
	}
}

func printFig7() {
	fmt.Println("Figure 7: fully adaptive 2D designs")
	mesh := topology.NewMesh(5, 5)
	for _, tc := range []struct {
		name  string
		chain *core.Chain
	}{
		{"(a) four partitions, 8 channels", paper.Figure7FourPartitions()},
		{"(b) P1 = DyXY, 6 channels", paper.Figure7P1()},
		{"(c) P2, 6 channels", paper.Figure7P2()},
	} {
		vcs := cdg.VCConfigFor(2, tc.chain.Channels())
		ad, err := cdg.Adaptiveness(mesh, vcs, tc.chain.AllTurns())
		fmt.Printf("  %-32s %s\n", tc.name, tc.chain)
		if err != nil {
			fmt.Printf("    adaptiveness: %v\n", err)
		} else {
			fmt.Printf("    %s; fully adaptive: %v\n", ad, ad.FullyAdaptive())
		}
		fmt.Printf("    %s\n", cdg.VerifyChain(mesh, tc.chain))
	}
	fmt.Printf("  minimum channels for n=2: %d\n", core.MinChannelsFullyAdaptive(2))
}

func printFig8() {
	chain := paper.Figure8()
	fmt.Printf("Figure 8: turn extraction for %s\n", chain)
	for _, b := range paper.Figure8Boxes() {
		fmt.Printf("  %s\n", b.Label)
		if b.Turns90 != "" {
			fmt.Printf("    Turns:   %s\n", b.Turns90)
		}
		if b.UTurns != "" {
			fmt.Printf("    U-Turns: %s\n", b.UTurns)
		}
		if b.ITurns != "" {
			fmt.Printf("    I-Turns: %s\n", b.ITurns)
		}
		if b.Notes != "" {
			fmt.Printf("    note: %s\n", b.Notes)
		}
	}
	ts := chain.AllTurns()
	n90, nU, nI := ts.Counts()
	fmt.Printf("  totals: %d 90-degree, %d U, %d I\n", n90, nU, nI)
	fmt.Println(verifyLine(topology.NewMesh(3, 3, 3), chain))
}

func printFig9() {
	fmt.Println("Figure 9: 3D fully adaptive designs")
	mesh := topology.NewMesh(3, 3, 3)
	for _, tc := range []struct {
		name  string
		chain *core.Chain
	}{
		{"(a) eight partitions, 24 channels", paper.Figure9EightPartitions()},
		{"(b) four partitions, 16 channels (2,2,4 VCs)", paper.Figure9B()},
		{"(c) four partitions, 16 channels (3,2,3 VCs)", paper.Figure9C()},
	} {
		fmt.Printf("  %-46s %s\n", tc.name, tc.chain)
		vcs := cdg.VCConfigFor(3, tc.chain.Channels())
		ad, err := cdg.Adaptiveness(mesh, vcs, tc.chain.AllTurns())
		if err == nil {
			fmt.Printf("    %s; fully adaptive: %v\n", ad, ad.FullyAdaptive())
		}
		fmt.Printf("    %s\n", cdg.VerifyChain(mesh, tc.chain))
	}
	fmt.Printf("  minimum channels for n=3: %d\n", core.MinChannelsFullyAdaptive(3))
}

func printSection2() {
	fmt.Println("Section 2: turn-model verification search space")
	for _, c := range paper.Section2Claims() {
		fmt.Printf("  %-35s %2d abstract cycles -> %s combinations (paper: %s)\n",
			c.Setting, c.Cycles, c.Combos, c.PaperText)
		if !c.Consistent {
			fmt.Printf("    note: %s\n", c.Notes)
		}
	}
	rs := paper.TurnModelSearch(topology.NewMesh(4, 4))
	free, classes := paper.CountDeadlockFree(rs)
	fmt.Printf("  brute force over all 16 2D removals: %d deadlock-free, %d unique under symmetry\n",
		free, classes)
	for _, r := range rs {
		status := "deadlock-free"
		if !r.DeadlockFree {
			status = "CYCLIC"
		}
		fmt.Printf("    remove %s (cw) + %s (ccw): %s (class %d)\n",
			r.RemovedCW.PlainString(), r.RemovedCCW.PlainString(), status, r.SymmetryClass)
	}
	res3 := paper.TurnModelSearch3D(topology.NewMesh(3, 3, 3))
	fmt.Printf("  3D sweep (beyond the paper): %d combinations, %d deadlock-free, %d classes under cube symmetry\n",
		res3.Combinations, res3.DeadlockFree, res3.Classes)
}

func printSection5() {
	fmt.Println("Section 5 worked example: Algorithm 1 on 3,2,3 VCs")
	arr := paper.Section5Arrangement()
	for _, s := range arr {
		fmt.Printf("  input %s\n", s)
	}
	chain, err := paper.Section5Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  result: %s\n", chain)
	fmt.Printf("  paper:  %s\n", paper.Section5Expected)
	fmt.Println(verifyLine(topology.NewMesh(3, 3, 3), chain))
}

func printHamiltonian() {
	chain := paper.HamiltonianChain()
	ts := chain.AllTurns()
	n90, _, _ := ts.Counts()
	fmt.Printf("Section 6.2: Hamiltonian-path strategy via %s\n", chain.PlainString())
	fmt.Printf("  90-degree turns (%d): %s\n", n90, core.FormatTurnsPlain(ts.ByKind(core.Turn90)))
	covered := true
	for _, t := range paper.HamiltonianPathTurns() {
		if !ts.Allows(t.From, t.To) {
			covered = false
		}
	}
	fmt.Printf("  covers all 8 dual-Hamiltonian-path turns: %v\n", covered)
	rep := cdg.VerifyTurnSet(topology.NewMesh(6, 6), nil, ts)
	fmt.Printf("  verification: %s\n", rep)
}
