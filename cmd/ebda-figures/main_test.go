package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRenderDeterministic renders every figure twice in the same process
// and requires byte-identical output. Go randomizes map iteration per
// range statement, so any map-order leak in the emitters (or in the
// paper/core layers they call) shows up as a diff here.
func TestRenderDeterministic(t *testing.T) {
	var first, second bytes.Buffer
	if err := render(&first, allFigs); err != nil {
		t.Fatalf("first render: %v", err)
	}
	if err := render(&second, allFigs); err != nil {
		t.Fatalf("second render: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("figure output is nondeterministic:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
	if first.Len() == 0 {
		t.Fatal("render produced no output")
	}
}

// TestRenderUnknownFigure checks the error path render's callers turn
// into exit status 2.
func TestRenderUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := render(&buf, []int{11}); err == nil {
		t.Fatal("render(11) succeeded; want unknown-figure error")
	}
}

// TestRenderContent spot-checks that each figure actually rendered.
func TestRenderContent(t *testing.T) {
	var buf bytes.Buffer
	if err := render(&buf, allFigs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Section 2:", "Figure 3:", "Figure 4:", "Figure 5:", "Figure 6:",
		"Figure 7:", "Figure 8:", "Figure 9:", "Figure 10:",
		"Section 5 worked example", "Section 6.2:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
