package ebda_test

import (
	"strings"
	"testing"

	"ebda"
	"ebda/internal/experiments"
)

// TestFacadeQuickstart exercises the public facade end to end, mirroring
// the package example.
func TestFacadeQuickstart(t *testing.T) {
	chain, err := ebda.ParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	if err != nil {
		t.Fatal(err)
	}
	turns := chain.AllTurns()
	n90, _, _ := turns.Counts()
	if n90 != 12 {
		t.Errorf("90-degree turns = %d, want 12", n90)
	}
	mesh := ebda.NewMesh(6, 6)
	rep := ebda.VerifyChain(mesh, chain)
	if !rep.Acyclic {
		t.Fatalf("verification failed: %s", rep)
	}
	ad, err := ebda.Adaptiveness(ebda.NewMesh(4, 4), []int{1, 2}, turns)
	if err != nil || !ad.FullyAdaptive() {
		t.Errorf("adaptiveness: %v %v", ad, err)
	}
	alg := ebda.NewAlgorithm("dyxy", chain, 2)
	res := ebda.Simulate(ebda.SimConfig{
		Net: mesh, Alg: alg, VCs: alg.VCs(),
		InjectionRate: 0.1, Seed: 1,
		Warmup: 300, Measure: 900, Drain: 900,
	})
	if res.Deadlocked || res.DeliveredPackets != res.InjectedPackets {
		t.Errorf("simulation: %s", res)
	}
}

// TestFacadeDesignFullyAdaptive checks the constructive design helper.
func TestFacadeDesignFullyAdaptive(t *testing.T) {
	for n := 1; n <= 4; n++ {
		chain, err := ebda.DesignFullyAdaptive(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(chain.Channels()); got != ebda.MinChannelsFullyAdaptive(n) {
			t.Errorf("n=%d: %d channels", n, got)
		}
	}
}

// TestFacadeRejectsBadDesigns checks validation surfaces through the
// facade.
func TestFacadeRejectsBadDesigns(t *testing.T) {
	if _, err := ebda.ParseChain("PA[X+ X- Y+ Y-]"); err == nil {
		t.Error("Theorem-1 violation accepted")
	}
	if _, err := ebda.ParseChain("PA[X+] -> PB[X+]"); err == nil {
		t.Error("overlapping partitions accepted")
	}
}

// TestFacadeDeadlockAndDiagram exercises the analysis and rendering
// helpers on the facade.
func TestFacadeDeadlockAndDiagram(t *testing.T) {
	chain := ebda.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	alg := ebda.NewAlgorithm("dyxy", chain, 2)
	cfg := ebda.FindDeadlockConfiguration(ebda.NewMesh(4, 4), alg.VCs(), alg)
	if !cfg.Empty() {
		t.Errorf("EbDa design should have no deadlock configuration:\n%s", cfg)
	}
	svg, err := ebda.TurnDiagramSVG(chain.AllTurns())
	if err != nil || !strings.Contains(svg, "<svg") {
		t.Errorf("diagram: %v", err)
	}
}

// TestAllExperimentsReproduce runs the complete harness (quick mode) and
// demands every paper artifact matches.
func TestAllExperimentsReproduce(t *testing.T) {
	results := experiments.RunAll(experiments.Options{Quick: true})
	if len(results) != 23 {
		t.Fatalf("experiments = %d, want 23", len(results))
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("experiment %s did not reproduce:\n%s", r.ID, r)
		}
	}
}

// TestExperimentIDsAreUnique guards the harness index.
func TestExperimentIDsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range experiments.All() {
		if seen[r.ID] {
			t.Errorf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if !strings.HasPrefix(r.ID, "E") && !strings.HasPrefix(r.ID, "X") {
			t.Errorf("unexpected ID format %s", r.ID)
		}
	}
}
