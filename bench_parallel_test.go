// Benchmarks for the parallel verification and simulation paths: each
// compares the serial (jobs=1) baseline against the all-cores worker pool
// on the same workload, so `go test -bench Parallel` shows the scaling on
// the machine at hand. The outputs are deterministic across jobs values
// (see the determinism tests), so the sub-benchmarks verify identical
// results while timing them.
package ebda_test

import (
	"fmt"
	"runtime"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/paper"
	"ebda/internal/routing"
	"ebda/internal/sim"
	"ebda/internal/topology"
)

// jobsVariants is the worker counts worth timing: the serial baseline and
// every core the host offers (deduplicated on single-core machines).
func jobsVariants() []int {
	n := runtime.GOMAXPROCS(0)
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

// BenchmarkVerifyParallel times full CDG construction + acyclicity of the
// six-channel fully adaptive design on a 32x32 mesh at each worker count.
func BenchmarkVerifyParallel(b *testing.B) {
	chain := paper.Figure7P1()
	net := topology.NewMesh(32, 32)
	ts := chain.AllTurns()
	vcs := cdg.VCConfigFor(2, chain.Channels())
	want := cdg.VerifyTurnSetJobs(net, vcs, ts, 1)
	for _, jobs := range jobsVariants() {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep := cdg.VerifyTurnSetJobs(net, vcs, ts, jobs)
				if !rep.Acyclic || rep.Edges != want.Edges {
					b.Fatalf("jobs=%d: %s (want %d edges)", jobs, rep, want.Edges)
				}
			}
			b.ReportMetric(float64(want.Channels)*float64(b.N)/b.Elapsed().Seconds(), "channels/s")
		})
	}
}

// BenchmarkVerifyRepeated times repeated verification of the six-channel
// fully adaptive design on a fixed 8x8 mesh — the sweep-loop shape the
// fast path targets. "fresh" pays a new workspace per verification (the
// pre-pooling cost), "workspace" reuses one workspace, and "cached"
// answers repeats from the verification cache. Run with -benchmem: the
// workspace variant must allocate far less than fresh, and cached less
// still.
func BenchmarkVerifyRepeated(b *testing.B) {
	chain := paper.Figure7P1()
	net := topology.NewMesh(8, 8)
	ts := chain.AllTurns()
	vcs := cdg.VCConfigFor(2, chain.Channels())
	want := cdg.VerifyTurnSetJobs(net, vcs, ts, 1)
	check := func(b *testing.B, rep cdg.Report) {
		if !rep.Acyclic || rep.Edges != want.Edges {
			b.Fatalf("%s (want %d edges)", rep, want.Edges)
		}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			check(b, cdg.NewWorkspace(net, vcs).VerifyTurnSetJobs(ts, 0))
		}
	})
	b.Run("workspace", func(b *testing.B) {
		b.ReportAllocs()
		ws := cdg.NewWorkspace(net, vcs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			check(b, ws.VerifyTurnSetJobs(ts, 0))
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		cache := &cdg.VerifyCache{}
		cache.VerifyTurnSetJobs(net, vcs, ts, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			check(b, cache.VerifyTurnSetJobs(net, vcs, ts, 0))
		}
	})
}

// BenchmarkAddEdges compares incremental single-edge insertion against the
// batched sorted-merge path on interleaved batches (the worst case for
// repeated O(n) inserts).
func BenchmarkAddEdges(b *testing.B) {
	net := topology.NewMesh(8, 8)
	const batchLen = 64
	evens := make([]int32, batchLen)
	odds := make([]int32, batchLen)
	for i := range evens {
		evens[i] = int32(2 * i)
		odds[i] = int32(2*i + 1)
	}
	b.Run("AddEdge", func(b *testing.B) {
		b.ReportAllocs()
		ws := cdg.NewWorkspace(net, nil)
		g := ws.Graph()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ws.Reset()
			for _, v := range evens {
				g.AddEdge(0, int(v))
			}
			for _, v := range odds {
				g.AddEdge(0, int(v))
			}
		}
	})
	b.Run("AddEdges", func(b *testing.B) {
		b.ReportAllocs()
		ws := cdg.NewWorkspace(net, nil)
		g := ws.Graph()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ws.Reset()
			g.AddEdges(0, evens...)
			g.AddEdges(0, odds...)
		}
	})
}

// BenchmarkRoutingEdgesParallel times the Dally routing-relation
// construction (per-destination closure) at each worker count, through the
// adaptive Figure 7 design whose memoizing Candidates is shared across the
// pool.
func BenchmarkRoutingEdgesParallel(b *testing.B) {
	net := topology.NewMesh(16, 16)
	chain := paper.Figure7P1()
	vcs := cdg.VCConfigFor(2, chain.Channels())
	want := -1
	for _, jobs := range jobsVariants() {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A fresh algorithm per iteration so the memo warms up
				// inside the timed region, like a first verification.
				alg := routing.NewFromChain("dyxy", chain, 2)
				rep := routing.VerifyJobs(net, vcs, alg, jobs)
				if !rep.Acyclic || (want >= 0 && rep.Edges != want) {
					b.Fatalf("jobs=%d: %s", jobs, rep)
				}
				want = rep.Edges
			}
		})
	}
}

// BenchmarkRunSeedsParallel times replicated simulation at each worker
// count: 8 seeds of the fully adaptive design on an 8x8 mesh.
func BenchmarkRunSeedsParallel(b *testing.B) {
	chain := paper.Figure7P1()
	alg := routing.NewFromChain("dyxy", chain, 2)
	cfg := sim.Config{
		Net: topology.NewMesh(8, 8), Alg: alg, VCs: alg.VCs(),
		InjectionRate: 0.2, Seed: 1,
		Warmup: 200, Measure: 800, Drain: 400,
	}
	want := sim.RunSeedsJobs(cfg, 8, 1)
	for _, jobs := range jobsVariants() {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := sim.RunSeedsJobs(cfg, 8, jobs)
				if rep != want {
					b.Fatalf("jobs=%d diverged from serial baseline", jobs)
				}
			}
			b.ReportMetric(8*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}
