// Quickstart: design a deadlock-free routing algorithm with EbDa in five
// steps — partition the channels, extract the turns, verify the channel
// dependency graph, measure adaptiveness, and simulate it.
package main

import (
	"fmt"
	"log"

	"ebda"
)

func main() {
	// 1. Design. Divide a 2D network's six channels (two X channels, two
	// VCs on each Y direction) into two disjoint partitions. Each
	// partition covers at most one complete D-pair (Theorem 1), and
	// packets may move from PA to PB but never back (Theorem 3). This is
	// the paper's Figure 7(b) — equivalent to DyXY.
	chain, err := ebda.ParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design:", chain)

	// 2. Extract every turn Theorems 1-3 admit.
	turns := chain.AllTurns()
	n90, nU, nI := turns.Counts()
	fmt.Printf("turns: %d 90-degree, %d U-turns, %d I-turns\n", n90, nU, nI)

	// 3. Verify mechanically: build the concrete channel dependency
	// graph on an 8x8 mesh and check for cycles (Dally's condition).
	mesh := ebda.NewMesh(8, 8)
	report := ebda.VerifyChain(mesh, chain)
	fmt.Println("verification:", report)
	if !report.Acyclic {
		log.Fatal("design is not deadlock-free")
	}

	// 4. Measure adaptiveness: the fraction of minimal paths usable.
	// This design is fully adaptive — every minimal path of every pair.
	vcs := []int{1, 2} // one X VC, two Y VCs
	ad, err := ebda.Adaptiveness(ebda.NewMesh(5, 5), vcs, turns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("adaptiveness:", ad)

	// 5. Simulate: run wormhole switching at a moderate load and watch
	// latency/throughput. The watchdog would flag any deadlock.
	alg := ebda.NewAlgorithm("dyxy", chain, 2)
	result := ebda.Simulate(ebda.SimConfig{
		Net: mesh, Alg: alg, VCs: alg.VCs(),
		InjectionRate: 0.2, Seed: 1,
	})
	fmt.Println("simulation:", result)
}
