// multicast: the dual-path Hamiltonian multicast strategy Section 6.2
// derives from EbDa parity partitions. One message visits many
// destinations with two worms — one walking the Hamiltonian snake upward,
// one downward — and every turn either worm takes is admitted by the
// partitioning PA{Xe+ Xo- Y+} -> PB{Xe- Xo+ Y-}, so multicast traffic is
// deadlock-free by the same theorems as unicast.
package main

import (
	"fmt"
	"log"

	"ebda"
	"ebda/internal/multicast"
	"ebda/internal/paper"
	"ebda/internal/topology"
)

func main() {
	net := ebda.NewMesh(6, 6)
	h, err := multicast.New(net)
	if err != nil {
		log.Fatal(err)
	}

	// The partitioning and its verification.
	chain := paper.HamiltonianChain()
	fmt.Println("partitioning:", chain.PlainString())
	fmt.Println("verification:", ebda.VerifyChain(net, chain))

	// Multicast from the centre to eight scattered destinations.
	src := net.ID(ebda.Coord{2, 2})
	var dsts []ebda.NodeID
	for _, c := range []ebda.Coord{
		{0, 0}, {5, 0}, {3, 1}, {0, 3}, {5, 3}, {1, 5}, {4, 5}, {5, 5},
	} {
		dsts = append(dsts, net.ID(c))
	}
	route, err := h.DualPath(src, dsts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmulticast from %v to %d destinations:\n", net.Coord(src), len(dsts))
	printPath := func(name string, p []topology.NodeID) {
		if len(p) == 0 {
			fmt.Printf("  %s path: (empty)\n", name)
			return
		}
		fmt.Printf("  %s path (%d hops):", name, len(p)-1)
		for _, n := range p {
			fmt.Printf(" %v", net.Coord(n))
		}
		fmt.Println()
	}
	printPath("high", route.High)
	printPath("low", route.Low)

	// Cost comparison: one dual-path message vs eight unicasts.
	uni := multicast.UnicastHops(net, src, dsts)
	fmt.Printf("\nlink traversals: dual-path %d vs %d for separate unicasts\n",
		route.Hops(), uni)

	// Every turn on both paths is admitted by the EbDa turn set.
	ts := chain.AllTurns()
	for _, p := range [][]topology.NodeID{route.High, route.Low} {
		classes, err := h.PathClasses(p)
		if err != nil {
			log.Fatal(err)
		}
		for i := 1; i < len(classes); i++ {
			if !ts.Allows(classes[i-1], classes[i]) {
				log.Fatalf("turn %s -> %s not admitted!", classes[i-1], classes[i])
			}
		}
	}
	fmt.Println("every worm turn is admitted by the partitioning: deadlock-free multicast")
}
