// deadlockdemo: watch a deadlock actually happen. Minimal fully adaptive
// routing with a single virtual channel and no turn restrictions has a
// cyclic channel dependency graph; under heavy load with long packets the
// wormhole network wedges. The same load on EbDa-derived designs (which
// are acyclic by construction) and on a Duato escape-channel design keeps
// flowing.
package main

import (
	"fmt"

	"ebda"
	"ebda/internal/duato"
	"ebda/internal/routing"
)

func main() {
	mesh := ebda.NewMesh(4, 4)

	// Static analysis first: the unrestricted relation is cyclic.
	bad := routing.NewUnrestricted()
	fmt.Println("static verification (Dally's condition):")
	fmt.Println("  unrestricted:", ebda.VerifyAlgorithm(mesh, nil, bad))

	dyxy := ebda.NewAlgorithm("ebda-6ch", ebda.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), 2)
	fmt.Println("  ebda-6ch:    ", ebda.VerifyAlgorithm(mesh, dyxy.VCs(), dyxy))

	// Now dynamics: stress all three at the same aggressive operating
	// point — 0.6 flits/node/cycle offered, 8-flit packets, 2-flit
	// buffers.
	stress := func(alg ebda.Algorithm, vcs []int) ebda.SimResult {
		return ebda.Simulate(ebda.SimConfig{
			Net: mesh, Alg: alg, VCs: vcs,
			InjectionRate: 0.6, PacketLen: 8, BufferDepth: 2,
			Seed: 7, Warmup: 2000, Measure: 6000, Drain: 2000,
			DeadlockThreshold: 500,
		})
	}

	du := duato.New()
	fmt.Println("\nstress simulation (0.6 flits/node/cycle, 8-flit packets, 2-flit buffers):")
	badRes := stress(bad, nil)
	fmt.Println("  unrestricted:", badRes)
	if badRes.Deadlocked {
		fmt.Println("  diagnosed " + badRes.DeadlockTrace)
	}
	fmt.Println("  ebda-6ch:    ", stress(dyxy, dyxy.VCs()))
	fmt.Println("  duato:       ", stress(du, du.VCsPerDim(mesh)))

	fmt.Println("\nThe unrestricted design wedges (the watchdog reports stuck flits);")
	fmt.Println("the EbDa design needs no escape channels and the Duato design needs")
	fmt.Println("its escape VC — both stay live.")
}
