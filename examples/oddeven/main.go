// oddeven: derive Chiu's Odd-Even turn model from EbDa parity partitions
// (Section 6.2 / Table 4), check it mechanically against the published
// rules, and race it against West-First and XY in the wormhole simulator
// under adversarial transpose traffic.
package main

import (
	"fmt"
	"log"

	"ebda"
	"ebda/internal/paper"
	"ebda/internal/routing"
	"ebda/internal/traffic"
)

func main() {
	// Partition the channels by column parity: PA holds the westward
	// channel plus the Y channels of even columns, PB the eastward
	// channel plus the Y channels of odd columns. Both partitions are
	// Theorem-1 valid and mutually disjoint; the PA -> PB transition
	// yields exactly the Odd-Even turn set.
	chain := paper.Table4Chain()
	fmt.Println("partitioning:", chain.PlainString())

	turns := chain.AllTurns()
	n90, _, _ := turns.Counts()
	fmt.Printf("90-degree turns (%d):\n", n90)
	for _, row := range paper.Table4Expected() {
		fmt.Printf("  %-8s %s\n", row.Label, row.Turns90)
	}

	// Verify: acyclic dependency graph and full minimal connectivity.
	mesh := ebda.NewMesh(8, 8)
	rep := ebda.VerifyChain(mesh, chain)
	fmt.Println("verification:", rep)
	if !rep.Acyclic {
		log.Fatal("odd-even derivation is not deadlock-free")
	}

	// Compare adaptiveness against West-First and XY.
	wf := ebda.MustParseChain("PA[X-] -> PB[X+ Y+ Y-]")
	xy := ebda.MustParseChain("PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]")
	small := ebda.NewMesh(6, 6)
	for _, tc := range []struct {
		name string
		c    *ebda.Chain
	}{{"odd-even", chain}, {"west-first", wf}, {"xy", xy}} {
		ad, err := ebda.Adaptiveness(small, nil, tc.c.AllTurns())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("adaptiveness %-11s %s\n", tc.name+":", ad)
	}

	// Simulate all three under transpose traffic, which punishes
	// deterministic diagonal-heavy routing.
	fmt.Println("\nsimulation, 8x8 mesh, transpose traffic, 0.15 flits/node/cycle:")
	for _, alg := range []ebda.Algorithm{
		routing.NewOddEven(), routing.NewWestFirst(), routing.NewXY(),
	} {
		res := ebda.Simulate(ebda.SimConfig{
			Net: mesh, Alg: alg,
			Pattern:       traffic.Transpose{},
			InjectionRate: 0.15, Seed: 5,
		})
		fmt.Printf("  %-15s %s\n", alg.Name(), res)
	}
}
