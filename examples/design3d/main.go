// design3d: construct the paper's minimum-channel fully adaptive design
// for 3D (and higher) meshes with the Section 4/5 methodology, inspect the
// per-partition structure, and confirm the (n+1)*2^(n-1) channel bound
// constructively.
package main

import (
	"fmt"
	"log"

	"ebda"
	"ebda/internal/partstrat"
)

func main() {
	// The formula: minimum channels for fully adaptive routing.
	fmt.Println("minimum channels for fully adaptive routing, N = (n+1) * 2^(n-1):")
	for n := 1; n <= 6; n++ {
		fmt.Printf("  n=%d: %3d channels\n", n, ebda.MinChannelsFullyAdaptive(n))
	}

	// Construct the 3D design: 4 partitions x 4 channels = 16 channels,
	// with 2, 2 and 4 VCs along X, Y and Z (the paper's Figure 9(b)).
	chain, err := ebda.DesignFullyAdaptive(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n3D design:")
	for _, p := range chain.Partitions() {
		fmt.Printf("  %s  (complete pair in %v)\n", p, p.CompletePairDims())
	}
	fmt.Printf("  VC requirement per dimension: %v\n", partstrat.VCRequirements(3))

	// Verify on a 4x4x4 mesh and measure adaptiveness on 3x3x3 (the
	// path-count check is exhaustive over all pairs).
	rep := ebda.VerifyChain(ebda.NewMesh(4, 4, 4), chain)
	fmt.Println("\nverification:", rep)

	ad, err := ebda.Adaptiveness(ebda.NewMesh(3, 3, 3), partstrat.VCRequirements(3), chain.AllTurns())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("adaptiveness:", ad)
	fmt.Println("fully adaptive:", ad.FullyAdaptive())

	// The same machinery scales to higher dimensions: build and verify
	// the 4D design (40 channels, 8 partitions) on a small 4D mesh.
	chain4, err := ebda.DesignFullyAdaptive(4)
	if err != nil {
		log.Fatal(err)
	}
	rep4 := ebda.VerifyChain(ebda.NewMesh(3, 3, 3, 3), chain4)
	fmt.Printf("\n4D design: %d partitions, %d channels\n", chain4.Len(), len(chain4.Channels()))
	fmt.Println("verification:", rep4)

	// Simulate the 3D design under uniform traffic.
	alg := ebda.NewAlgorithm("ebda-3d", chain, 3)
	res := ebda.Simulate(ebda.SimConfig{
		Net: ebda.NewMesh(4, 4, 4), Alg: alg, VCs: alg.VCs(),
		InjectionRate: 0.15, Seed: 7,
	})
	fmt.Println("\nsimulation on 4x4x4:", res)
}
