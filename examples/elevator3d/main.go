// elevator3d: route on a vertically partially connected 3D network
// (stacked dies with a few through-silicon vias). The EbDa partitioning of
// Section 6.3 / Table 5 gives 30 turns with 1,2,1 virtual channels; the
// deterministic Elevator-First baseline needs 2,2,1 VCs for 16 turns. Both
// are verified and simulated side by side.
package main

import (
	"fmt"
	"log"

	"ebda"
	"ebda/internal/paper"
	"ebda/internal/routing"
)

func main() {
	// A 4x4x3 stack with two elevator columns at opposite corners.
	elevators := routing.Elevators{{0, 0}, {3, 3}}
	net := ebda.NewPartialMesh3D(4, 4, 3, [][2]int(elevators))
	fmt.Println("network:", net, "with elevators at (0,0) and (3,3)")

	// The EbDa design: two partitions, 1/2/1 VCs.
	chain := paper.Table5Chain()
	fmt.Println("design:", chain)
	n90, nU, nI := chain.AllTurns().Counts()
	fmt.Printf("turns: %d 90-degree + %d U/I (Elevator-First uses 16 turns with 2,2,1 VCs)\n",
		n90, nU+nI)

	rep := ebda.VerifyChain(net, chain)
	fmt.Println("verification:", rep)
	if !rep.Acyclic {
		log.Fatal("design is not deadlock-free")
	}

	// Executable routing: up-moves live in PA, so packets ascend via an
	// elevator no further west than themselves; descending packets pick
	// an elevator east of both endpoints (see routing.NewEbDaElevator).
	ebdaAlg := routing.NewEbDaElevator(chain, elevators)
	baseline := routing.NewElevatorFirst(elevators)

	for _, tc := range []struct {
		alg ebda.Algorithm
		vcs []int
	}{
		{ebdaAlg, ebdaAlg.VCs()},
		{baseline, baseline.VCsPerDim()},
	} {
		vrep := ebda.VerifyAlgorithm(net, tc.vcs, tc.alg)
		del := routing.CheckDelivery(net, tc.alg, 96)
		fmt.Printf("\n%s (VCs %v)\n  relation: %s\n  delivery: %s\n",
			tc.alg.Name(), tc.vcs, vrep, del)

		res := ebda.Simulate(ebda.SimConfig{
			Net: net, Alg: tc.alg, VCs: tc.vcs,
			InjectionRate: 0.08, Seed: 11,
		})
		fmt.Printf("  simulation: %s\n", res)
	}

	fmt.Println("\nThe trade-off is visible above: the EbDa design needs fewer virtual")
	fmt.Println("channels (1,2,1 vs 2,2,1) and admits nearly twice the turns, but its")
	fmt.Println("partition ordering constrains elevator choice (ascents must be reached")
	fmt.Println("eastward, descents must exit westward), funnelling vertical traffic and")
	fmt.Println("raising latency at this load. Elevator-First spends an extra X/Y VC to")
	fmt.Println("use the nearest elevator unconditionally.")
}
