// faulttolerant: reroute around broken links using the U- and I-turns
// Theorem 2 admits (the paper's stated motivation for them). Because the
// EbDa turn relation is acyclic, misrouting inherits two guarantees for
// free: no deadlock (the detour turns are a subset of the verified
// relation) and no livelock (every hop advances in the dependency graph's
// topological order, so walks are bounded by the channel count).
package main

import (
	"fmt"
	"log"

	"ebda"
	"ebda/internal/channel"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

func main() {
	chain := ebda.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	base := ebda.NewMesh(6, 6)

	// Break two links in the middle of the mesh.
	faults := []topology.Link{
		{From: base.ID(ebda.Coord{2, 3}), Dim: channel.X, Sign: channel.Plus},
		{From: base.ID(ebda.Coord{3, 2}), Dim: channel.Y, Sign: channel.Plus},
	}
	faulty := base.WithoutLinks(faults)
	fmt.Println("network:", faulty, "with faults E@(2,3) and N@(3,2)")

	// Strict minimal routing strands straight-line routes across the
	// faults...
	minimal := ebda.NewAlgorithm("dyxy-minimal", chain, 2)
	del := routing.CheckDelivery(faulty, minimal, 64)
	fmt.Println("minimal-only routing:   ", del)

	// ...the fault-tolerant variant detours through permitted turns.
	ft := routing.NewFaultTolerant("dyxy-ft", chain, faulty)
	del = routing.CheckDelivery(faulty, ft, 128)
	fmt.Println("fault-tolerant routing: ", del)
	if !del.OK() {
		log.Fatal("fault-tolerant routing failed")
	}

	// The rerouting relation remains acyclic — deadlock-free by
	// construction, even with the detour turns in play.
	rep := ebda.VerifyAlgorithm(faulty, ft.VCs(), ft)
	fmt.Println("relation check:         ", rep)

	// And it holds up in the wormhole simulator under load.
	res := ebda.Simulate(ebda.SimConfig{
		Net: faulty, Alg: ft, VCs: ft.VCs(),
		InjectionRate: 0.15, Seed: 3,
	})
	fmt.Println("simulation:             ", res)
}
