# Standard development targets. Stdlib-only module; no network needed.

GO ?= go

.PHONY: all build test race bench bench-json bench-diff bench-delta bench-cluster cluster-soak repro fmt vet lint lint-sarif obs-smoke trace-smoke serve-smoke graph-smoke fuzz-short check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Write the perf snapshot (per-experiment wall time, CDG channels/sec).
bench-json:
	$(GO) run ./cmd/ebda-repro -quick -benchjson BENCH_verify.json

# Compare the committed snapshot against a fresh one; fails on >20%
# wall-time regression. Usage: make bench-diff [OLD=BENCH_verify.json]
OLD ?= BENCH_verify.json
bench-diff:
	$(GO) run ./cmd/ebda-repro -quick -benchjson BENCH_new.json
	$(GO) run ./cmd/ebda-benchdiff $(OLD) BENCH_new.json

# Measure incremental (delta) verification against from-scratch verifies
# — every diff is equivalence-checked before timing — and hold the fresh
# snapshot against the committed one. The single-link case must stay at
# or below 5% of full-verify cost (ebda-benchdiff's -delta-ratio gate).
OLD_DELTA ?= BENCH_delta.json
bench-delta:
	$(GO) run ./cmd/ebda-deltabench -out BENCH_delta_new.json
	$(GO) run ./cmd/ebda-benchdiff $(OLD_DELTA) BENCH_delta_new.json

# Drive the in-process replica cluster through the shard ring (-smoke:
# zero 5xx, peer and forward paths exercised, byte-identical verdicts
# from every replica, snapshot warm starts answer from cache, scaling
# at or above 0.75x per replica), write a fresh cluster snapshot and
# hold it against the committed one (ebda-benchdiff's -cluster-scaling
# gate: a 4-replica run must reach 3.0x).
OLD_CLUSTER ?= BENCH_cluster.json
bench-cluster:
	$(GO) run ./cmd/ebda-loadgen -cluster -replicas 4 -smoke -out BENCH_cluster_new.json
	$(GO) run ./cmd/ebda-benchdiff $(OLD_CLUSTER) BENCH_cluster_new.json

# cluster-soak is bench-cluster's race-detector twin: the same 4-replica
# smoke run compiled with -race, gating only the invariants (the race
# build's walls still clear the relative scaling floor because baseline
# and phases slow down together).
cluster-soak:
	$(GO) run -race ./cmd/ebda-loadgen -cluster -replicas 4 -smoke -out /dev/null

# Regenerate every table and figure of the paper (paper-vs-measured).
repro:
	$(GO) run ./cmd/ebda-repro -details

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# lint = go vet + the repo's own analyzer suite (detlint, locklint,
# hotpath, verifygate, deadlint, ctxlint); see CONTRIBUTING.md for the
# invariants each analyzer enforces and the //ebda:allow escape hatch.
# lint.baseline suppresses inherited findings, so the gate fails only on
# NEW diagnostics; lint-sarif additionally writes lint.sarif for upload
# to code-scanning UIs.
lint: vet
	$(GO) run ./cmd/ebda-lint -baseline lint.baseline ./...

lint-sarif: vet
	$(GO) run ./cmd/ebda-lint -baseline lint.baseline -sarif lint.sarif ./...

# obs-smoke runs the same deterministic verification twice with -obs-json
# and asserts the dumps parse, carry the required engine series, and are
# byte-identical after canonicalisation (timing fields zeroed).
obs-smoke:
	$(GO) run ./cmd/ebda-obssmoke

# trace-smoke pins the tracing determinism contract: two identical
# sampled runs on fresh in-process replicas must render byte-identical
# canonical span trees (names, nesting, attributes — IDs and timings
# stripped).
trace-smoke:
	$(GO) run ./cmd/ebda-obssmoke -trace

# serve-smoke starts ebda-serve on a loopback port, drives the fixed
# seeded loadgen workload against it (-smoke: zero 5xx, >=1 coalesced
# request, byte-identical verdicts for repeated identical requests,
# invalid requests rejected with 4xx; writes BENCH_serve.json), then
# SIGTERMs the server and requires a clean graceful drain.
serve-smoke:
	GO="$(GO)" ./scripts/serve-smoke.sh

# graph-smoke drives the built ebda-graph binary over the committed
# testdata/graphio goldens in all four modes (loop, liveness, escape,
# subrel), asserting the exact verdict lines and exit codes plus a
# byte-stable text -> JSON -> text export round-trip.
graph-smoke:
	GO="$(GO)" ./scripts/graph-smoke.sh

# fuzz-short gives the /v1 request decoder a brief native-fuzz shake on
# every check; the seeded corpus alone regresses in milliseconds, the
# 5s budget lets the mutator explore a little too.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeVerifyRequest -fuzztime=5s ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzParseCDG -fuzztime=5s ./internal/graphio

# race is part of check so the worker pools are race-tested routinely;
# obs-smoke keeps the -obs-json determinism contract honest; trace-smoke
# does the same for request traces; serve-smoke and fuzz-short guard the
# HTTP serving layer end to end; graph-smoke pins the arbitrary-network
# CLI's verdicts over the committed goldens.
check: build lint test race obs-smoke trace-smoke serve-smoke graph-smoke fuzz-short

clean:
	$(GO) clean ./...
