# Standard development targets. Stdlib-only module; no network needed.

GO ?= go

.PHONY: all build test race bench repro fmt vet check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure of the paper (paper-vs-measured).
repro:
	$(GO) run ./cmd/ebda-repro -details

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

check: build vet test

clean:
	$(GO) clean ./...
