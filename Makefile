# Standard development targets. Stdlib-only module; no network needed.

GO ?= go

.PHONY: all build test race bench bench-json repro fmt vet check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Write the perf snapshot (per-experiment wall time, CDG channels/sec).
bench-json:
	$(GO) run ./cmd/ebda-repro -quick -benchjson BENCH_verify.json

# Regenerate every table and figure of the paper (paper-vs-measured).
repro:
	$(GO) run ./cmd/ebda-repro -details

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# race is part of check so the worker pools are race-tested routinely.
check: build vet test race

clean:
	$(GO) clean ./...
