// Benchmarks: one per table and figure of the paper (regenerating the
// artifact end to end, verification included), plus the extension
// experiments, micro-benchmarks of the core machinery, and the ablation
// benches DESIGN.md calls out.
package ebda_test

import (
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/deadlock"
	"ebda/internal/duato"
	"ebda/internal/experiments"
	"ebda/internal/multicast"
	"ebda/internal/paper"
	"ebda/internal/partstrat"
	"ebda/internal/routing"
	"ebda/internal/sim"
	"ebda/internal/synth"
	"ebda/internal/topology"
	"ebda/internal/updown"
)

// quick are the reduced-size options used for simulation-heavy benches.
var quick = experiments.Options{Quick: true}

func benchExperiment(b *testing.B, run func(experiments.Options) experiments.Result, opts experiments.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := run(opts)
		if !res.Match {
			b.Fatalf("experiment mismatch: %s", res)
		}
	}
}

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkFig3(b *testing.B)   { benchExperiment(b, experiments.E01, quick) }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, experiments.E02, quick) }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, experiments.E03, quick) }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, experiments.E04, quick) }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, experiments.E05, quick) }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, experiments.E06, quick) }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, experiments.E07, quick) }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, experiments.E08, quick) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, experiments.E09, quick) }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, experiments.E10, quick) }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, experiments.E11, quick) }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, experiments.E12, quick) }

func BenchmarkTurnModelSearch(b *testing.B) { benchExperiment(b, experiments.E13, quick) }
func BenchmarkAlgorithm1(b *testing.B)      { benchExperiment(b, experiments.E14, quick) }
func BenchmarkHamiltonian(b *testing.B)     { benchExperiment(b, experiments.E15, quick) }
func BenchmarkRoutingLogic(b *testing.B)    { benchExperiment(b, experiments.E16, quick) }

func BenchmarkSimSweep(b *testing.B)          { benchExperiment(b, experiments.X01, quick) }
func BenchmarkDeadlockInjection(b *testing.B) { benchExperiment(b, experiments.X02, quick) }
func BenchmarkTorus(b *testing.B)             { benchExperiment(b, experiments.X03, quick) }
func BenchmarkSaturation(b *testing.B)        { benchExperiment(b, experiments.X04, quick) }
func BenchmarkSwitchingModes(b *testing.B)    { benchExperiment(b, experiments.X05, quick) }
func BenchmarkMulticast(b *testing.B)         { benchExperiment(b, experiments.X06, quick) }
func BenchmarkTheoryContrast(b *testing.B)    { benchExperiment(b, experiments.X07, quick) }

// BenchmarkMinChannels runs the exhaustive n=2 lower-bound search (the
// expensive part of E07, skipped in the quick experiment run).
func BenchmarkMinChannels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ok, best := experiments.SearchNoFullyAdaptiveBelow(6)
		if !ok || best >= 1 {
			b.Fatalf("search: ok=%v best=%f", ok, best)
		}
	}
}

// --- Micro-benchmarks of the core machinery ------------------------------

func BenchmarkDeadlockConfigurationSearch(b *testing.B) {
	net := topology.NewMesh(4, 4)
	du := duato.New()
	vcs := cdg.VCConfig(du.VCsPerDim(net))
	for i := 0; i < b.N; i++ {
		if !deadlock.Find(net, vcs, du).Empty() {
			b.Fatal("Duato should be configuration-free")
		}
	}
}

func BenchmarkMulticastBroadcast(b *testing.B) {
	net := topology.NewMesh(8, 8)
	h, err := multicast.New(net)
	if err != nil {
		b.Fatal(err)
	}
	var dsts []topology.NodeID
	for id := topology.NodeID(1); int(id) < net.Nodes(); id++ {
		dsts = append(dsts, id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		route, err := h.DualPath(0, dsts)
		if err != nil || route.Hops() == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanarAdaptiveVerify(b *testing.B) {
	net := topology.NewMesh(4, 4, 4)
	alg := routing.NewPlanarAdaptive()
	vcs := cdg.VCConfig(alg.VCsPerDim(net))
	for i := 0; i < b.N; i++ {
		if !routing.Verify(net, vcs, alg).Acyclic {
			b.Fatal("cyclic")
		}
	}
}

func BenchmarkFaultTolerantReroute(b *testing.B) {
	base := topology.NewMesh(6, 6)
	faulty := base.WithoutLinks([]topology.Link{{
		From: base.ID(topology.Coord{2, 3}), Dim: channel.X, Sign: channel.Plus,
	}})
	chain := paper.Figure7P1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg := routing.NewFaultTolerant("ft", chain, faulty)
		if del := routing.CheckDelivery(faulty, alg, 128); !del.OK() {
			b.Fatalf("%s", del)
		}
	}
}

func BenchmarkUpDownVerify(b *testing.B) {
	net := topology.NewMesh(6, 6)
	ud, err := updown.New(net, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if !routing.Verify(net, nil, ud).Acyclic {
			b.Fatal("cyclic")
		}
	}
}

func BenchmarkSynthesizeRoutingLogic(b *testing.B) {
	chain := paper.Figure8()
	for i := 0; i < b.N; i++ {
		l, err := synth.Generate("fig8", chain, 3)
		if err != nil || l.Leaves() == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkTurnExtraction3D(b *testing.B) {
	chain := paper.Figure8()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := chain.AllTurns()
		if ts.Len() != 140 {
			b.Fatalf("turns = %d", ts.Len())
		}
	}
}

func BenchmarkCDGVerify8x8(b *testing.B) {
	chain := paper.Figure7P1()
	net := topology.NewMesh(8, 8)
	ts := chain.AllTurns()
	vcs := cdg.VCConfigFor(2, chain.Channels())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !cdg.VerifyTurnSet(net, vcs, ts).Acyclic {
			b.Fatal("not acyclic")
		}
	}
}

func BenchmarkCDGVerify16x16(b *testing.B) {
	chain := paper.Figure7P1()
	net := topology.NewMesh(16, 16)
	ts := chain.AllTurns()
	vcs := cdg.VCConfigFor(2, chain.Channels())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !cdg.VerifyTurnSet(net, vcs, ts).Acyclic {
			b.Fatal("not acyclic")
		}
	}
}

func BenchmarkCDGVerify3D(b *testing.B) {
	chain := paper.Figure8()
	net := topology.NewMesh(4, 4, 4)
	ts := chain.AllTurns()
	vcs := cdg.VCConfigFor(3, chain.Channels())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !cdg.VerifyTurnSet(net, vcs, ts).Acyclic {
			b.Fatal("not acyclic")
		}
	}
}

func BenchmarkAdaptiveness(b *testing.B) {
	chain := paper.Figure7P1()
	net := topology.NewMesh(5, 5)
	ts := chain.AllTurns()
	vcs := cdg.VCConfigFor(2, chain.Channels())
	for i := 0; i < b.N; i++ {
		rep, err := cdg.Adaptiveness(net, vcs, ts)
		if err != nil || !rep.FullyAdaptive() {
			b.Fatalf("%v %v", rep, err)
		}
	}
}

func BenchmarkPartitioningDerive(b *testing.B) {
	arr := partstrat.ArrangementFor([]int{2, 2})
	for i := 0; i < b.N; i++ {
		chains, err := partstrat.Derive(arr)
		if err != nil || len(chains) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoutingCandidates(b *testing.B) {
	chain := paper.Figure7P1()
	alg := routing.NewFromChain("dyxy", chain, 2)
	net := topology.NewMesh(8, 8)
	src := net.ID(topology.Coord{1, 1})
	dst := net.ID(topology.Coord{6, 6})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(alg.Candidates(net, src, nil, dst)) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkSimulatorCycles measures raw simulation speed (cycles include
// all router pipelines of an 8x8 mesh at moderate load).
func BenchmarkSimulatorCycles(b *testing.B) {
	chain := paper.Figure7P1()
	alg := routing.NewFromChain("dyxy", chain, 2)
	cfg := sim.Config{
		Net: topology.NewMesh(8, 8), Alg: alg, VCs: alg.VCs(),
		InjectionRate: 0.2, Seed: 1,
		Warmup: 100, Measure: 900, Drain: 0,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := sim.New(cfg).Run()
		if res.Deadlocked {
			b.Fatal("deadlocked")
		}
	}
	b.ReportMetric(1000*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// --- Ablation benches (design choices DESIGN.md calls out) ---------------

// BenchmarkAblationTransitions compares any-ascending-order Theorem-3
// transitions against consecutive-only. Minimal-path adaptiveness is
// unchanged (each orthant already has a dedicated partition), but the
// consecutive-only relation admits strictly fewer turns — fewer identical
// turns and U/I alternatives for load balance and fault tolerance. Both
// variants must verify acyclic.
func BenchmarkAblationTransitions(b *testing.B) {
	chain := paper.Figure9C()
	net := topology.NewMesh(3, 3, 3)
	vcs := cdg.VCConfigFor(3, chain.Channels())
	all := chain.Turns(core.TurnOptions{UITurns: true})
	consec := chain.Turns(core.TurnOptions{UITurns: true, ConsecutiveOnly: true})
	if consec.Len() >= all.Len() {
		b.Fatalf("consecutive-only should admit fewer turns: %d vs %d", consec.Len(), all.Len())
	}
	run := func(name string, opts core.TurnOptions) {
		b.Run(name, func(b *testing.B) {
			var turns int
			for i := 0; i < b.N; i++ {
				ts := chain.Turns(opts)
				if !cdg.VerifyTurnSet(net, vcs, ts).Acyclic {
					b.Fatalf("%s: cyclic", name)
				}
				turns = ts.Len()
			}
			b.ReportMetric(float64(turns), "turns")
		})
	}
	run("all-ascending", core.TurnOptions{UITurns: true})
	run("consecutive-only", core.TurnOptions{UITurns: true, ConsecutiveOnly: true})
}

// BenchmarkAblationUITurns compares turn extraction with and without
// Theorem-2 U/I-turns (both remain acyclic; U/I turns add paths for
// fault tolerance, not minimal adaptiveness).
func BenchmarkAblationUITurns(b *testing.B) {
	chain := paper.Figure8()
	net := topology.NewMesh(3, 3, 3)
	vcs := cdg.VCConfigFor(3, chain.Channels())
	for _, tc := range []struct {
		name string
		opts core.TurnOptions
	}{
		{"with-ui", core.TurnOptions{UITurns: true}},
		{"without-ui", core.TurnOptions{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !cdg.VerifyTurnSet(net, vcs, chain.Turns(tc.opts)).Acyclic {
					b.Fatal("cyclic")
				}
			}
		})
	}
}

// BenchmarkAblationPartitionCount measures the adaptiveness cost of
// splitting the channels of one design into 2, 3 and 4 partitions
// (Tables 1-3 in miniature).
func BenchmarkAblationPartitionCount(b *testing.B) {
	net := topology.NewMesh(5, 5)
	chains := map[string]*core.Chain{
		"2-partitions": core.MustParseChain("PA[X+ Y+] -> PB[X- Y-]"),
		"3-partitions": core.MustParseChain("PA[X+ Y+] -> PB[X-] -> PC[Y-]"),
		"4-partitions": core.MustParseChain("PA[X+] -> PB[Y+] -> PC[X-] -> PD[Y-]"),
	}
	for name, chain := range chains {
		b.Run(name, func(b *testing.B) {
			var degree float64
			for i := 0; i < b.N; i++ {
				rep, err := cdg.Adaptiveness(net, nil, chain.AllTurns())
				if err != nil {
					b.Fatal(err)
				}
				degree = rep.Degree()
			}
			b.ReportMetric(degree, "adaptiveness")
		})
	}
}

// BenchmarkAblationSelection compares the simulator's VC selection
// policies on the fully adaptive design.
func BenchmarkAblationSelection(b *testing.B) {
	chain := paper.Figure7P1()
	alg := routing.NewFromChain("dyxy", chain, 2)
	for _, tc := range []struct {
		name string
		sel  sim.Selection
	}{
		{"random", sim.SelectRandom},
		{"first", sim.SelectFirst},
		{"credits", sim.SelectCredits},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var latency float64
			for i := 0; i < b.N; i++ {
				res := sim.New(sim.Config{
					Net: topology.NewMesh(8, 8), Alg: alg, VCs: alg.VCs(),
					InjectionRate: 0.25, Seed: 1, Selection: tc.sel,
					Warmup: 300, Measure: 900, Drain: 300,
				}).Run()
				if res.Deadlocked {
					b.Fatal("deadlocked")
				}
				latency = res.AvgLatency
			}
			b.ReportMetric(latency, "latency-cycles")
		})
	}
}
