module ebda

go 1.22
